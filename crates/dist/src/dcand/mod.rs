//! D-CAND: distributed mining with compressed candidate representations
//! (Sec. VI of the paper).
//!
//! For every input sequence `T`, the mapper enumerates the accepting runs of
//! the FST, σ-filters their output sets, and computes the pivot set of each
//! run with the ⊕ merge of Th. 1 ([`merge_pivots`]). For every pivot `p` it
//! builds a trie/NFA representing exactly the candidates of `G^σ_π(T)` with
//! pivot `p`: each run is decomposed by the *first position producing `p`*
//! into product terms (`< p` before, `= p` at, `≤ p` after the first
//! occurrence), which keeps the per-position-set Cartesian semantics intact.
//! The serialized NFA is shipped to partition `P_p`; identical NFAs are
//! aggregated into weighted ones by the engine's combiner (Sec. VI-A
//! "Aggregation"), and suffix-sharing minimization shrinks them further
//! ([`nfa::TrieBuilder::minimize`]).
//!
//! Reducers decode the NFAs, expand each one into its (deduplicated)
//! candidate set, and count candidates weighted by the number of source
//! sequences — DESQ-COUNT over compressed inputs. Run enumeration and NFA
//! expansion are bounded by [`DCandConfig::run_budget`], the analog of the
//! paper's executor memory limit: loose constraints (e.g. `T1` at low σ)
//! exhaust it exactly where the paper reports out-of-memory failures.

pub mod nfa;

use desq_core::fst::flat::RunSets;
use desq_core::fst::{CandidateCounter, FstIndex, RunScratch, RunWalker};
use desq_core::{Dictionary, Error, Fst, ItemId, Result, Sequence};

use desq_bsp::{Combiner, Engine};

use crate::{from_bsp, to_bsp, Exec, MiningResult};
use nfa::{Nfa, TrieBuilder};

/// Configuration of the D-CAND algorithm.
#[derive(Debug, Clone, Copy)]
pub struct DCandConfig {
    /// Minimum support threshold σ.
    pub sigma: u64,
    /// Merge suffix-equivalent NFA states before serialization
    /// (Fig. 10b "full D-CAND" vs "tries").
    pub minimize: bool,
    /// Aggregate identical serialized NFAs into weighted records via the
    /// engine's combiner (Fig. 10b "tries" vs "tries, no agg").
    pub aggregate: bool,
    /// Work budget per sequence (map side: accepting runs walked and trie
    /// insertions; reduce side: NFA expansion steps). Exceeding it aborts
    /// with [`Error::ResourceExhausted`] — the paper's OOM analog.
    pub run_budget: usize,
}

impl DCandConfig {
    /// Full D-CAND at threshold `sigma` (minimization and aggregation on,
    /// unbounded budget).
    pub fn new(sigma: u64) -> DCandConfig {
        DCandConfig {
            sigma,
            minimize: true,
            aggregate: true,
            run_budget: usize::MAX,
        }
    }

    /// Overrides the work budget.
    pub fn with_run_budget(mut self, budget: usize) -> DCandConfig {
        self.run_budget = budget;
        self
    }
}

/// The ⊕ pivot merge of Th. 1: the pivot set of a run with output sets
/// `sets` — i.e. `{ max(w_1..w_k) : w_i ∈ sets_i }` — equals the distinct
/// elements of the union that are no smaller than the largest per-set
/// minimum. Sets must be non-empty and sorted ascending; the result is
/// sorted ascending. An empty slice yields the empty set.
///
/// Generic over the set representation so callers can pass owned
/// `Vec<ItemId>` sets or slices borrowed from a flat run-table arena.
pub fn merge_pivots<S: AsRef<[ItemId]>>(sets: &[S]) -> Vec<ItemId> {
    merge_pivots_iter(sets.iter().map(AsRef::as_ref))
}

/// [`merge_pivots`] over any re-iterable view of the sets — the flat run
/// walker's [`RunSets`] pass their arena-backed slices straight through
/// without collecting.
fn merge_pivots_iter<'s>(sets: impl Iterator<Item = &'s [ItemId]> + Clone) -> Vec<ItemId> {
    let mut threshold = 0;
    let mut any = false;
    for s in sets.clone() {
        match s.first() {
            Some(&min) => threshold = threshold.max(min),
            None => return Vec::new(),
        }
        any = true;
    }
    if !any {
        return Vec::new();
    }
    let mut out: Vec<ItemId> = Vec::new();
    for s in sets {
        for &w in s {
            if w >= threshold && !out.contains(&w) {
                out.push(w);
            }
        }
    }
    out.sort_unstable();
    out
}

/// Decomposes `path` (σ-filtered, ε-free output sets of one accepting run)
/// into product terms whose union is exactly the pivot-`p` candidates of
/// the run, and inserts them into `trie`. Term `j` fixes the *first*
/// occurrence of `p` at position `j`: items `< p` before, `p` at, `≤ p`
/// after — so terms are disjoint and their union complete.
fn insert_pivot_terms(
    trie: &mut TrieBuilder,
    path: &RunSets<'_>,
    p: ItemId,
    budget: usize,
    work: &mut usize,
) -> Result<()> {
    let mut term: Vec<Vec<ItemId>> = Vec::with_capacity(path.len());
    'first_occurrence: for j in 0..path.len() {
        if !path.set(j).contains(&p) {
            continue;
        }
        term.clear();
        for (i, set) in path.iter().enumerate() {
            let restricted: Vec<ItemId> = if i < j {
                set.iter().copied().filter(|&w| w < p).collect()
            } else if i == j {
                vec![p]
            } else {
                set.iter().copied().filter(|&w| w <= p).collect()
            };
            if restricted.is_empty() {
                continue 'first_occurrence;
            }
            term.push(restricted);
        }
        *work += 1;
        if *work > budget {
            return Err(Error::ResourceExhausted(format!(
                "D-CAND trie construction exceeded budget of {budget}"
            )));
        }
        trie.insert(&term);
    }
    Ok(())
}

/// Builds the per-pivot serialized NFAs for one input sequence by walking
/// the flat run tables: σ-filtered output sets come straight from the
/// walker's per-`(position, label)` arena (no `Grid`, no per-transition
/// output materialization), and each run's pivot set and first-occurrence
/// decomposition are processed as the run is enumerated.
fn representations(
    walker: &RunWalker<'_>,
    seq: &Sequence,
    config: &DCandConfig,
    scratch: &mut RunScratch,
) -> Result<Vec<(ItemId, Vec<u8>)>> {
    let budget = config.run_budget;
    let mut work = 0usize;
    let mut exhausted = false;
    let mut failure: Option<Error> = None;
    let mut tries: std::collections::BTreeMap<ItemId, TrieBuilder> =
        std::collections::BTreeMap::new();
    let completed = walker.for_each_run(seq, scratch, |sets| {
        work += 1;
        if work > budget {
            exhausted = true;
            return false;
        }
        if sets.is_dead() || sets.is_empty() {
            // σ-killed runs count enumeration work but represent nothing;
            // all-ε runs only produce the empty candidate.
            return true;
        }
        for p in merge_pivots_iter(sets.iter()) {
            let trie = tries.entry(p).or_default();
            if let Err(e) = insert_pivot_terms(trie, sets, p, budget, &mut work) {
                failure = Some(e);
                return false;
            }
        }
        true
    });
    if let Some(e) = failure {
        return Err(e);
    }
    if exhausted || !completed {
        return Err(Error::ResourceExhausted(format!(
            "D-CAND run enumeration exceeded budget of {budget}"
        )));
    }
    Ok(tries
        .into_iter()
        .map(|(p, trie)| {
            let nfa = if config.minimize {
                trie.minimize()
            } else {
                trie.into_nfa()
            };
            (p, nfa.serialize())
        })
        .collect())
}

/// The workhorse behind [`d_cand`] and [`crate::algo::DCand`]:
/// single-process execution.
pub(crate) fn d_cand_impl(
    engine: &Engine,
    parts: &[&[Sequence]],
    fst: &Fst,
    dict: &Dictionary,
    config: DCandConfig,
) -> Result<MiningResult> {
    Ok(d_cand_exec(engine, parts, fst, dict, config, Exec::Local)?
        .expect("local execution returns a result"))
}

/// Runs D-CAND over an explicit shuffle transport (see
/// [`crate::dseq::d_seq_via`] for the contract). Only the aggregating
/// variant ships over the wire: the "no agg" ablation uses the engine's
/// owned-value map/reduce shape, which the byte-oriented transport does
/// not carry — [`DCandConfig::aggregate`] must be `true`.
pub fn d_cand_via(
    engine: &Engine,
    transport: &dyn desq_bsp::ShuffleTransport,
    parts: &[&[Sequence]],
    fst: &Fst,
    dict: &Dictionary,
    config: DCandConfig,
) -> Result<MiningResult> {
    Ok(
        d_cand_exec(engine, parts, fst, dict, config, Exec::Via(transport))?
            .expect("driver execution returns a result"),
    )
}

/// Serves a D-CAND job as a worker process connected to the coordinator at
/// `addr`. Requires [`DCandConfig::aggregate`], like [`d_cand_via`].
pub fn d_cand_worker(
    engine: &Engine,
    addr: std::net::SocketAddr,
    net: &desq_bsp::NetConfig,
    parts: &[&[Sequence]],
    fst: &Fst,
    dict: &Dictionary,
    config: DCandConfig,
) -> Result<()> {
    d_cand_exec(engine, parts, fst, dict, config, Exec::Worker(addr, net))?;
    Ok(())
}

fn d_cand_exec(
    engine: &Engine,
    parts: &[&[Sequence]],
    fst: &Fst,
    dict: &Dictionary,
    config: DCandConfig,
    exec: Exec<'_>,
) -> Result<Option<MiningResult>> {
    desq_core::mining::validate_sigma(config.sigma)?;
    if !config.aggregate && !matches!(exec, Exec::Local) {
        return Err(Error::Invalid(
            "D-CAND without aggregation is not supported over a shuffle transport \
             (the no-agg ablation uses the owned-value map/reduce shape)"
                .into(),
        ));
    }
    let t0 = std::time::Instant::now();
    let last_frequent = dict.last_frequent(config.sigma);
    let index = FstIndex::new(fst);

    // Shared reduce body over borrowed NFA byte slices: expand each NFA
    // (its candidate set is deduplicated by construction) and count the
    // candidates into an interned byte-key table, weighted by source
    // multiplicity — DESQ-COUNT over compressed inputs, σ-filtered.
    let expand_and_count = |inputs: &mut dyn Iterator<Item = (&[u8], u64)>,
                            emit: &mut dyn FnMut((Sequence, u64))|
     -> desq_bsp::Result<()> {
        let mut counter = CandidateCounter::new();
        for (bytes, weight) in inputs {
            let nfa = Nfa::deserialize(bytes).map_err(to_bsp)?;
            counter.begin_sequence(weight);
            for candidate in nfa.expand(config.run_budget).map_err(to_bsp)? {
                counter.observe(&candidate);
            }
        }
        for pattern in counter.patterns(config.sigma) {
            emit(pattern);
        }
        Ok(())
    };

    let (patterns, job) = if config.aggregate {
        let map = |part: &[Sequence], out: &mut Combiner<ItemId>| {
            let walker = RunWalker::new(fst, dict, &index, last_frequent);
            let mut scratch = RunScratch::default();
            for seq in part {
                for (p, bytes) in
                    representations(&walker, seq, &config, &mut scratch).map_err(to_bsp)?
                {
                    // The serialized NFA goes through the byte-payload
                    // path: combined by content, interned per bucket chunk.
                    out.emit(&p, &bytes, 1);
                }
            }
            Ok(())
        };
        let reduce =
            |_p: &ItemId, inputs: &[(&[u8], u64)], emit: &mut dyn FnMut((Sequence, u64))| {
                expand_and_count(&mut inputs.iter().copied(), emit)
            };
        let reduce_with =
            |_: &mut (),
             p: &ItemId,
             inputs: &[(&[u8], u64)],
             emit: &mut dyn FnMut((Sequence, u64))| { reduce(p, inputs, emit) };
        match exec {
            Exec::Local => engine
                .map_combine_reduce(parts, map, reduce)
                .map_err(from_bsp)?,
            Exec::Via(transport) => engine
                .map_combine_reduce_via(transport, parts, map, || (), reduce_with)
                .map_err(from_bsp)?,
            Exec::Worker(addr, net) => {
                engine
                    .run_worker(addr, net, parts, map, || (), reduce_with)
                    .map_err(from_bsp)?;
                return Ok(None);
            }
        }
    } else {
        // The guard above pinned this branch to Exec::Local.
        engine
            .map_reduce(
                parts,
                |part: &[Sequence], emit: &mut dyn FnMut(ItemId, (Vec<u8>, u64))| {
                    let walker = RunWalker::new(fst, dict, &index, last_frequent);
                    let mut scratch = RunScratch::default();
                    for seq in part {
                        for (p, bytes) in
                            representations(&walker, seq, &config, &mut scratch).map_err(to_bsp)?
                        {
                            emit(p, (bytes, 1));
                        }
                    }
                    Ok(())
                },
                |_p: &ItemId,
                 inputs: Vec<(Vec<u8>, u64)>,
                 emit: &mut dyn FnMut((Sequence, u64))| {
                    expand_and_count(&mut inputs.iter().map(|(b, w)| (b.as_slice(), *w)), emit)
                },
            )
            .map_err(from_bsp)?
    };
    let patterns = desq_miner::sort_patterns(patterns);
    let metrics = crate::metrics_from_job(
        job,
        t0.elapsed().as_nanos() as u64,
        engine.workers(),
        crate::input_len(parts),
    );
    Ok(Some(MiningResult { patterns, metrics }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use desq_core::mining::{Miner, MiningContext};
    use desq_core::toy;

    #[test]
    fn merge_pivots_matches_theorem_examples() {
        // Paper running example: the run sets of r2 on T5 are {a1}, {A, a1},
        // {b}; achievable pivots are a1 only (A and b are below the largest
        // minimum a1).
        let fx = toy::fixture();
        let sets = vec![vec![fx.a1], vec![fx.big_a, fx.a1], vec![fx.b]];
        assert_eq!(merge_pivots(&sets), vec![fx.a1]);
        // Degenerate cases.
        assert!(merge_pivots::<Vec<ItemId>>(&[]).is_empty());
        assert_eq!(merge_pivots(&[vec![3, 7]]), vec![3, 7]);
        assert_eq!(merge_pivots(&[vec![1, 5], vec![2, 9]]), vec![2, 5, 9]);
    }

    #[test]
    fn toy_matches_reference_across_configs() {
        let fx = toy::fixture();
        let engine = Engine::new(2);
        let parts = fx.db.partition(3);
        for sigma in 1..=4 {
            let reference = desq_miner::algo::DesqCount
                .mine(&MiningContext::sequential(&fx.db, &fx.dict, sigma).with_fst(&fx.fst))
                .unwrap()
                .patterns;
            for minimize in [false, true] {
                for aggregate in [false, true] {
                    let cfg = DCandConfig {
                        sigma,
                        minimize,
                        aggregate,
                        run_budget: usize::MAX,
                    };
                    let res = d_cand_impl(&engine, &parts, &fx.fst, &fx.dict, cfg).unwrap();
                    assert_eq!(
                        res.patterns, reference,
                        "σ={sigma} min={minimize} agg={aggregate}"
                    );
                }
            }
        }
    }

    #[test]
    fn minimization_never_grows_shuffle() {
        let fx = toy::fixture();
        let engine = Engine::new(1);
        let parts = fx.db.partition(1);
        let plain = d_cand_impl(
            &engine,
            &parts,
            &fx.fst,
            &fx.dict,
            DCandConfig {
                minimize: false,
                ..DCandConfig::new(2)
            },
        )
        .unwrap();
        let minimized =
            d_cand_impl(&engine, &parts, &fx.fst, &fx.dict, DCandConfig::new(2)).unwrap();
        assert!(minimized.metrics.shuffle_bytes <= plain.metrics.shuffle_bytes);
    }

    #[test]
    fn zero_budget_exhausts_on_matching_input() {
        let fx = toy::fixture();
        let engine = Engine::new(1);
        let parts = fx.db.partition(1);
        let err = d_cand_impl(
            &engine,
            &parts,
            &fx.fst,
            &fx.dict,
            DCandConfig::new(2).with_run_budget(0),
        )
        .unwrap_err();
        assert!(matches!(err, Error::ResourceExhausted(_)));
    }

    #[test]
    fn zero_sigma_rejected() {
        let fx = toy::fixture();
        let engine = Engine::new(1);
        let parts = fx.db.partition(1);
        assert!(matches!(
            d_cand_impl(&engine, &parts, &fx.fst, &fx.dict, DCandConfig::new(0)),
            Err(Error::Invalid(_))
        ));
    }
}
