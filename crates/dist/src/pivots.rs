//! Pivot search: computing `K^σ(T)` — the pivot items of the candidate
//! subsequences `G^σ_π(T)` — and the rewritten ranges `ρ_p(T)` (Sec. V-A
//! and V-B of the paper).
//!
//! The pivot item of a candidate is its largest item; because fids are
//! frequency ranks, that is its maximum fid. [`PivotSearch::pivots`]
//! computes the full pivot set by dynamic programming over the
//! position–state [`Grid`]: for every alive coordinate it maintains the set
//! of achievable "maximum output item of an accepting completion", merging
//! transition contributions with the ⊕ operator of Th. 1 (implemented in
//! [`crate::dcand::merge_pivots`]). This is polynomial even when the number
//! of accepting runs is exponential. [`PivotSearch::pivots_enumerated`] is
//! the ablation variant that enumerates runs instead (bounded by a budget —
//! the paper's "no grid" configuration of Fig. 10a).
//!
//! Rewriting: the paper shortens the input sent to partition `P_p` by
//! dropping irrelevant prefixes and suffixes. This implementation applies
//! *safety-clamped* trimming: a leading position is dropped only while every
//! alive run idles in the initial state with ε output (the `.*` prefix
//! shape), and a trailing position only while every alive coordinate is
//! final with ε-output continuations (the `.*` suffix shape). Under these
//! conditions trimming provably preserves the candidate sets of **all**
//! pivots, including for adversarial FSTs where more aggressive per-pivot
//! trimming would change results.

use desq_core::fst::{runs, Grid, OutputLabel};
use desq_core::{Dictionary, Error, Fst, ItemId, Result, EPSILON};

use crate::dcand::merge_pivots;

/// One pivot of a sequence together with the rewritten range: partition
/// `P_item` receives `seq[first..=last]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PivotRange {
    /// The pivot item (a frequent fid).
    pub item: ItemId,
    /// First position of the rewritten sequence (inclusive).
    pub first: u32,
    /// Last position of the rewritten sequence (inclusive).
    pub last: u32,
}

/// Pivot computation for one compiled FST over one dictionary.
pub struct PivotSearch<'a> {
    fst: &'a Fst,
    dict: &'a Dictionary,
    last_frequent: ItemId,
}

impl<'a> PivotSearch<'a> {
    /// Creates a pivot search. `last_frequent` is the largest frequent fid
    /// (`dict.last_frequent(sigma)`), computed on the *global* database.
    pub fn new(fst: &'a Fst, dict: &'a Dictionary, last_frequent: ItemId) -> PivotSearch<'a> {
        PivotSearch {
            fst,
            dict,
            last_frequent,
        }
    }

    /// The σ-filtered output set of `tr` on input item `t`, with ε encoded
    /// as [`EPSILON`]. An empty result means the transition cannot occur on
    /// any all-frequent candidate (the run is dead under the σ filter).
    fn filtered_outputs(&self, tr: &desq_core::fst::Transition, t: ItemId) -> Vec<ItemId> {
        let mut buf = Vec::new();
        tr.outputs(t, self.dict, &mut buf);
        buf.retain(|&w| w == EPSILON || w <= self.last_frequent);
        buf
    }

    /// `K^σ(T)`, with the shared rewritten range, sorted ascending by item.
    pub fn pivots(&self, seq: &[ItemId]) -> Vec<PivotRange> {
        let grid = Grid::build(self.fst, self.dict, seq);
        let pivots = self.pivot_set(seq, &grid);
        if pivots.is_empty() {
            return Vec::new();
        }
        let (first, last) = self
            .safe_range_with(seq, &grid)
            .expect("pivots imply a range");
        pivots
            .into_iter()
            .map(|item| PivotRange {
                item,
                first: first as u32,
                last: last as u32,
            })
            .collect()
    }

    /// The pivot set alone (no ranges), via the grid DP.
    fn pivot_set(&self, seq: &[ItemId], grid: &Grid) -> Vec<ItemId> {
        if seq.is_empty() || !grid.accepts() {
            return Vec::new();
        }
        let n = seq.len();
        let q = self.fst.num_states();
        // pivs[i * q + s]: sorted set of achievable maxima of the outputs
        // produced from coordinate (i, s) to acceptance. EPSILON marks the
        // all-ε completion.
        let mut pivs: Vec<Vec<ItemId>> = vec![Vec::new(); (n + 1) * q];
        for s in 0..q as u32 {
            if grid.is_alive(n, s) {
                pivs[n * q + s as usize] = vec![EPSILON];
            }
        }
        for i in (0..n).rev() {
            for s in 0..q as u32 {
                if !grid.is_alive(i, s) {
                    continue;
                }
                let mut acc: Vec<ItemId> = Vec::new();
                for tr in self.fst.transitions(s) {
                    if !tr.matches(seq[i], self.dict) || !grid.is_alive(i + 1, tr.to) {
                        continue;
                    }
                    let outs = self.filtered_outputs(tr, seq[i]);
                    if outs.is_empty() {
                        continue;
                    }
                    let rest = &pivs[(i + 1) * q + tr.to as usize];
                    if rest.is_empty() {
                        continue;
                    }
                    // ⊕ of two sorted sets: elements of the union no
                    // smaller than the larger of the two minima.
                    let threshold = outs[0].max(rest[0]);
                    for &w in outs.iter().chain(rest.iter()) {
                        if w >= threshold && !acc.contains(&w) {
                            acc.push(w);
                        }
                    }
                }
                acc.sort_unstable();
                pivs[i * q + s as usize] = acc;
            }
        }
        let mut out = std::mem::take(&mut pivs[self.fst.initial() as usize]);
        out.retain(|&w| w != EPSILON);
        out
    }

    /// `K^σ(T)` by explicit run enumeration (the "no grid" ablation).
    /// `budget` bounds the number of runs walked.
    pub fn pivots_enumerated(&self, seq: &[ItemId], budget: usize) -> Result<Vec<ItemId>> {
        let grid = Grid::build(self.fst, self.dict, seq);
        self.enumerated_set(seq, &grid, budget)
    }

    /// Like [`Self::pivots`], but computing the pivot set by run
    /// enumeration while sharing one grid for the rewritten range (used by
    /// D-SEQ's "no grid" ablation so the range does not rebuild it).
    pub fn pivots_enumerated_ranges(
        &self,
        seq: &[ItemId],
        budget: usize,
    ) -> Result<Vec<PivotRange>> {
        let grid = Grid::build(self.fst, self.dict, seq);
        let pivots = self.enumerated_set(seq, &grid, budget)?;
        if pivots.is_empty() {
            return Ok(Vec::new());
        }
        let (first, last) = self
            .safe_range_with(seq, &grid)
            .expect("pivots imply a range");
        Ok(pivots
            .into_iter()
            .map(|item| PivotRange {
                item,
                first: first as u32,
                last: last as u32,
            })
            .collect())
    }

    fn enumerated_set(&self, seq: &[ItemId], grid: &Grid, budget: usize) -> Result<Vec<ItemId>> {
        if !grid.accepts() {
            return Ok(Vec::new());
        }
        let mut work = 0usize;
        let mut exhausted = false;
        let mut pivots: Vec<ItemId> = Vec::new();
        let mut sets: Vec<Vec<ItemId>> = Vec::new();
        let completed = runs::for_each_accepting_run(self.fst, self.dict, seq, grid, |path| {
            work += 1;
            if work > budget {
                exhausted = true;
                return false;
            }
            sets.clear();
            for (tr, &t) in path.iter().zip(seq) {
                let buf = self.filtered_outputs(tr, t);
                if buf.is_empty() {
                    return true; // dead under the σ filter
                }
                if buf != [EPSILON] {
                    sets.push(buf);
                }
            }
            for p in merge_pivots(&sets) {
                if !pivots.contains(&p) {
                    pivots.push(p);
                }
            }
            true
        });
        if exhausted || !completed {
            return Err(Error::ResourceExhausted(format!(
                "pivot enumeration exceeded budget of {budget}"
            )));
        }
        pivots.sort_unstable();
        Ok(pivots)
    }

    /// The safety-clamped rewritten range shared by all pivots of `seq`, or
    /// `None` if the FST rejects the sequence.
    pub fn safe_range(&self, seq: &[ItemId]) -> Option<(usize, usize)> {
        let grid = Grid::build(self.fst, self.dict, seq);
        self.safe_range_with(seq, &grid)
    }

    fn safe_range_with(&self, seq: &[ItemId], grid: &Grid) -> Option<(usize, usize)> {
        if seq.is_empty() || !grid.accepts() {
            return None;
        }
        let first = self.safe_front(seq, grid);
        if first == seq.len() {
            // Every position idles in the initial state: only the empty
            // candidate exists. Keep a minimal non-empty range.
            return Some((0, seq.len() - 1));
        }
        let last = seq.len() - 1 - self.safe_back(seq, grid, first);
        Some((first, last))
    }

    /// Number of leading positions provably droppable: while the only alive
    /// coordinate is the initial state and all its alive transitions are
    /// ε-output self-loops, every alive run idles there.
    fn safe_front(&self, seq: &[ItemId], grid: &Grid) -> usize {
        let initial = self.fst.initial();
        let mut i = 0;
        while i < seq.len() {
            if !grid.is_alive(i, initial) {
                return i;
            }
            for tr in self.fst.transitions(initial) {
                if !tr.matches(seq[i], self.dict) || !grid.is_alive(i + 1, tr.to) {
                    continue;
                }
                if tr.produces_output() || tr.to != initial {
                    return i;
                }
            }
            i += 1;
        }
        i
    }

    /// Number of trailing positions provably droppable (symmetric to
    /// [`Self::safe_front`]): position `j` may go while every
    /// forward-reachable coordinate `(j, s)` satisfies "alive iff final" and
    /// all alive transitions produce ε — then ending at `j` accepts exactly
    /// the runs that previously consumed the suffix silently.
    fn safe_back(&self, seq: &[ItemId], grid: &Grid, first: usize) -> usize {
        let n = seq.len();
        let q = self.fst.num_states();
        // Forward reachability (the grid only stores aliveness).
        let mut fwd = vec![false; (n + 1) * q];
        fwd[self.fst.initial() as usize] = true;
        for i in 0..n {
            for s in 0..q as u32 {
                if !fwd[i * q + s as usize] {
                    continue;
                }
                for tr in self.fst.transitions(s) {
                    if tr.matches(seq[i], self.dict) {
                        fwd[(i + 1) * q + tr.to as usize] = true;
                    }
                }
            }
        }
        let mut dropped = 0;
        'outer: while dropped + first + 1 < n {
            let j = n - 1 - dropped;
            for s in 0..q as u32 {
                if !fwd[j * q + s as usize] {
                    continue;
                }
                let alive = grid.is_alive(j, s);
                if alive != self.fst.is_final(s) {
                    break 'outer;
                }
                if !alive {
                    continue;
                }
                for tr in self.fst.transitions(s) {
                    if tr.matches(seq[j], self.dict)
                        && grid.is_alive(j + 1, tr.to)
                        && tr.produces_output()
                    {
                        break 'outer;
                    }
                }
            }
            dropped += 1;
        }
        dropped
    }

    /// The largest frequent fid this search filters with.
    pub fn last_frequent(&self) -> ItemId {
        self.last_frequent
    }

    /// Like [`Self::filtered_outputs`], exposed for D-CAND's run collection.
    pub(crate) fn filtered_run_sets(
        &self,
        path: &[&desq_core::fst::Transition],
        seq: &[ItemId],
    ) -> Option<Vec<Vec<ItemId>>> {
        let mut sets = Vec::new();
        for (tr, &t) in path.iter().zip(seq) {
            if matches!(tr.output, OutputLabel::None) {
                continue;
            }
            let buf = self.filtered_outputs(tr, t);
            if buf.is_empty() {
                return None;
            }
            sets.push(buf);
        }
        Some(sets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desq_core::fst::candidates;
    use desq_core::toy;

    #[test]
    fn toy_pivots_match_fig3() {
        let fx = toy::fixture();
        let search = PivotSearch::new(&fx.fst, &fx.dict, fx.dict.last_frequent(2));
        let expected: [&[ItemId]; 5] = [&[fx.a1, fx.c], &[fx.a1], &[], &[], &[fx.a1]];
        for (t, expect) in fx.db.sequences.iter().zip(expected) {
            let got: Vec<ItemId> = search.pivots(t).iter().map(|p| p.item).collect();
            assert_eq!(got, expect, "K({})", fx.dict.render(t));
        }
    }

    #[test]
    fn grid_and_enumeration_agree_on_toy() {
        let fx = toy::fixture();
        for sigma in 1..=5 {
            let search = PivotSearch::new(&fx.fst, &fx.dict, fx.dict.last_frequent(sigma));
            for seq in &fx.db.sequences {
                let grid: Vec<ItemId> = search.pivots(seq).iter().map(|p| p.item).collect();
                let enumerated = search.pivots_enumerated(seq, usize::MAX).unwrap();
                assert_eq!(grid, enumerated, "σ={sigma}, seq {seq:?}");
            }
        }
    }

    #[test]
    fn pivots_match_candidate_definition_on_toy() {
        let fx = toy::fixture();
        for sigma in 1..=5u64 {
            let search = PivotSearch::new(&fx.fst, &fx.dict, fx.dict.last_frequent(sigma));
            for seq in &fx.db.sequences {
                let cands =
                    candidates::generate(&fx.fst, &fx.dict, seq, Some(sigma), usize::MAX).unwrap();
                let mut expect: Vec<ItemId> = cands
                    .iter()
                    .map(|c| desq_core::sequence::pivot(c))
                    .collect();
                expect.sort_unstable();
                expect.dedup();
                let got: Vec<ItemId> = search.pivots(seq).iter().map(|p| p.item).collect();
                assert_eq!(got, expect, "σ={sigma}, seq {seq:?}");
            }
        }
    }

    #[test]
    fn rewriting_trims_t2_prefix() {
        let fx = toy::fixture();
        let search = PivotSearch::new(&fx.fst, &fx.dict, fx.dict.last_frequent(2));
        let t2 = &fx.db.sequences[1];
        let pr = search.pivots(t2);
        assert_eq!(pr.len(), 1);
        assert_eq!((pr[0].first, pr[0].last), (2, 6));
    }

    #[test]
    fn rewriting_preserves_candidates_on_toy() {
        let fx = toy::fixture();
        for sigma in 1..=4u64 {
            let search = PivotSearch::new(&fx.fst, &fx.dict, fx.dict.last_frequent(sigma));
            for seq in &fx.db.sequences {
                for pr in search.pivots(seq) {
                    let trimmed = &seq[pr.first as usize..=pr.last as usize];
                    let full =
                        candidates::generate(&fx.fst, &fx.dict, seq, Some(sigma), usize::MAX)
                            .unwrap();
                    let cut =
                        candidates::generate(&fx.fst, &fx.dict, trimmed, Some(sigma), usize::MAX)
                            .unwrap();
                    assert_eq!(full, cut, "σ={sigma}, pivot {} of {seq:?}", pr.item);
                }
            }
        }
    }

    #[test]
    fn enumeration_budget_respected() {
        let fx = toy::fixture();
        let search = PivotSearch::new(&fx.fst, &fx.dict, fx.dict.last_frequent(1));
        let t2 = &fx.db.sequences[1];
        let err = search.pivots_enumerated(t2, 1).unwrap_err();
        assert!(matches!(err, Error::ResourceExhausted(_)));
    }

    #[test]
    fn empty_and_rejected_sequences_have_no_pivots() {
        let fx = toy::fixture();
        let search = PivotSearch::new(&fx.fst, &fx.dict, fx.dict.last_frequent(2));
        assert!(search.pivots(&[]).is_empty());
        assert!(search.pivots(&fx.db.sequences[2]).is_empty()); // T3 rejected
        assert!(search.safe_range(&[]).is_none());
    }
}
