//! Pivot search: computing `K^σ(T)` — the pivot items of the candidate
//! subsequences `G^σ_π(T)` — and the rewritten ranges `ρ_p(T)` (Sec. V-A
//! and V-B of the paper).
//!
//! The pivot item of a candidate is its largest item; because fids are
//! frequency ranks, that is its maximum fid. [`PivotSearch::pivots`]
//! computes the full pivot set by dynamic programming over the
//! position–state grid: for every alive coordinate it maintains the set of
//! achievable "maximum output item of an accepting completion", merging
//! transition contributions with the ⊕ operator of Th. 1 (the same merge
//! as [`crate::dcand::merge_pivots`]). This is polynomial even when the
//! number of accepting runs is exponential.
//! [`PivotSearch::pivots_enumerated`] is the ablation variant that
//! enumerates runs instead (bounded by a budget — the paper's "no grid"
//! configuration of Fig. 10a) and doubles as the differential-test oracle
//! for the DP.
//!
//! # Hot-path layout
//!
//! The DP runs on the same flat substrate as DESQ-DFS local mining
//! (PR 3): a shared CSR [`FstIndex`] built once per search, per-position
//! bit-packed *match masks* with grid aliveness folded in (one bit test
//! replaces the ancestor check plus the aliveness lookup), forward/alive
//! grid bitsets, and σ-filtered output sets materialized per
//! `(position, interned label)` into an arena. The per-coordinate pivot
//! sets are small sorted arrays in two row arenas (the backward DP only
//! ever reads row `i + 1` to produce row `i`), merged with ⊕ as pure
//! sorted-merge passes. All of it lives in a caller-provided
//! [`PivotScratch`] — one per worker thread, reused across sequences, so
//! the per-sequence search allocates nothing.
//!
//! Rewriting: the paper shortens the input sent to partition `P_p` by
//! dropping irrelevant prefixes and suffixes. This implementation applies
//! *safety-clamped* trimming: a leading position is dropped only while every
//! alive run idles in the initial state with ε output (the `.*` prefix
//! shape), and a trailing position only while every alive coordinate is
//! final with ε-output continuations (the `.*` suffix shape). Under these
//! conditions trimming provably preserves the candidate sets of **all**
//! pivots, including for adversarial FSTs where more aggressive per-pivot
//! trimming would change results.

use desq_core::fst::{runs, FstIndex, Grid};
use desq_core::{Dictionary, Error, Fst, ItemId, Result, EPSILON};

use crate::dcand::merge_pivots;

/// One pivot of a sequence together with the rewritten range: partition
/// `P_item` receives `seq[first..=last]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PivotRange {
    /// The pivot item (a frequent fid).
    pub item: ItemId,
    /// First position of the rewritten sequence (inclusive).
    pub first: u32,
    /// Last position of the rewritten sequence (inclusive).
    pub last: u32,
}

/// Reusable scratch of the flat pivot DP: grid bitsets, the output arena
/// and the two DP row arenas.
///
/// Create one per worker thread (`PivotScratch::default()`), pass it to
/// [`PivotSearch::pivots_with`] / [`PivotSearch::pivots_into`] for every
/// sequence the thread processes, and the search performs no per-sequence
/// allocation once the buffers have grown to the workload's high-water
/// mark.
#[derive(Default)]
pub struct PivotScratch {
    /// Per-position match masks (`n × words`), pruned to transitions whose
    /// target coordinate is alive.
    mask: Vec<u64>,
    /// Forward-reachability bitset over `(position, state)` cells.
    fwd: Vec<u64>,
    /// Aliveness bitset (forward-reachable ∧ accepting completion exists).
    alive: Vec<u64>,
    /// Arena ranges of the σ-filtered output set per
    /// `(position, interned label)`.
    out_off: Vec<(u32, u32)>,
    /// Output-set arena.
    outs: Vec<ItemId>,
    /// DP row `i` under construction: per-state arena ranges + items.
    cur: Vec<ItemId>,
    cur_off: Vec<(u32, u32)>,
    /// DP row `i + 1` (previous iteration's result).
    prev: Vec<ItemId>,
    prev_off: Vec<(u32, u32)>,
    /// Accumulated ⊕ union of one cell, and the two merge double-buffers.
    acc: Vec<ItemId>,
    tmp: Vec<ItemId>,
    tmp2: Vec<ItemId>,
    /// Raw output buffer of one `(position, label)` materialization.
    outbuf: Vec<ItemId>,
}

#[inline]
fn set_bit(bits: &mut [u64], i: usize) {
    bits[i / 64] |= 1 << (i % 64);
}

#[inline]
fn get_bit(bits: &[u64], i: usize) -> bool {
    bits[i / 64] >> (i % 64) & 1 != 0
}

/// Merges two strictly-ascending sorted sets into `out` (union, dedup).
fn merge_union(a: &[ItemId], b: &[ItemId], out: &mut Vec<ItemId>) {
    out.clear();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

/// The ⊕ contribution of one transition — elements of `outs ∪ rest` no
/// smaller than the larger of the two minima — unioned into `acc` in two
/// merge passes over small sorted arrays (`tmp`/`tmp2` are persistent
/// double buffers; nothing allocates after warm-up). Both inputs must be
/// non-empty and sorted ascending.
fn oplus_into(
    outs: &[ItemId],
    rest: &[ItemId],
    acc: &mut Vec<ItemId>,
    tmp: &mut Vec<ItemId>,
    tmp2: &mut Vec<ItemId>,
) {
    let threshold = outs[0].max(rest[0]);
    let o = &outs[outs.partition_point(|&w| w < threshold)..];
    let r = &rest[rest.partition_point(|&w| w < threshold)..];
    merge_union(o, r, tmp2);
    if acc.is_empty() {
        std::mem::swap(acc, tmp2);
        return;
    }
    merge_union(tmp2, acc, tmp);
    std::mem::swap(acc, tmp);
}

/// Pivot computation for one compiled FST over one dictionary.
///
/// Construction derives the shared [`FstIndex`] once; the per-sequence
/// state lives in a caller-provided [`PivotScratch`].
pub struct PivotSearch<'a> {
    fst: &'a Fst,
    dict: &'a Dictionary,
    last_frequent: ItemId,
    index: FstIndex,
}

impl<'a> PivotSearch<'a> {
    /// Creates a pivot search. `last_frequent` is the largest frequent fid
    /// (`dict.last_frequent(sigma)`), computed on the *global* database.
    pub fn new(fst: &'a Fst, dict: &'a Dictionary, last_frequent: ItemId) -> PivotSearch<'a> {
        PivotSearch {
            fst,
            dict,
            last_frequent,
            index: FstIndex::new(fst),
        }
    }

    /// The σ-filtered output set of `tr` on input item `t`, with ε encoded
    /// as [`EPSILON`]. An empty result means the transition cannot occur on
    /// any all-frequent candidate (the run is dead under the σ filter).
    /// Used by the run-enumeration oracle and D-CAND.
    fn filtered_outputs(&self, tr: &desq_core::fst::Transition, t: ItemId) -> Vec<ItemId> {
        let mut buf = Vec::new();
        tr.outputs(t, self.dict, &mut buf);
        buf.retain(|&w| w == EPSILON || w <= self.last_frequent);
        buf
    }

    /// `K^σ(T)`, with the shared rewritten range, sorted ascending by item.
    ///
    /// Convenience wrapper over [`Self::pivots_with`] with a throwaway
    /// scratch; hot loops should hoist a [`PivotScratch`] per thread
    /// instead.
    pub fn pivots(&self, seq: &[ItemId]) -> Vec<PivotRange> {
        self.pivots_with(seq, &mut PivotScratch::default())
    }

    /// `K^σ(T)` with the shared rewritten range, using caller-provided
    /// scratch (flat grid DP — no `Grid`, no per-sequence allocation
    /// beyond the returned vector).
    pub fn pivots_with(&self, seq: &[ItemId], scratch: &mut PivotScratch) -> Vec<PivotRange> {
        let mut out = Vec::new();
        self.pivots_into(seq, scratch, &mut out);
        out
    }

    /// Like [`Self::pivots_with`], but clearing and filling a caller
    /// buffer — the fully allocation-free form used by D-SEQ's mapper.
    pub fn pivots_into(
        &self,
        seq: &[ItemId],
        scratch: &mut PivotScratch,
        out: &mut Vec<PivotRange>,
    ) {
        out.clear();
        if seq.is_empty() || !self.prepare(seq, scratch) {
            return;
        }
        self.flat_pivot_set(seq, scratch);
        let (start, end) = scratch.prev_off[self.fst.initial() as usize];
        let pivots = &scratch.prev[start as usize..end as usize];
        let pivots = &pivots[pivots.partition_point(|&w| w == EPSILON)..];
        if pivots.is_empty() {
            return;
        }
        let (first, last) = self
            .range_from_scratch(seq, scratch)
            .expect("pivots imply a range");
        out.extend(pivots.iter().map(|&item| PivotRange {
            item,
            first: first as u32,
            last: last as u32,
        }));
    }

    /// Builds the per-sequence tables in `scratch`: match masks (pruned by
    /// aliveness), forward-reachability and aliveness bitsets. Returns
    /// `true` iff the FST accepts `seq`.
    fn prepare(&self, seq: &[ItemId], scratch: &mut PivotScratch) -> bool {
        let ix = &self.index;
        let n = seq.len();
        let qn = self.fst.num_states();
        let w = ix.words();

        scratch.mask.clear();
        scratch.mask.resize(n * w, 0);
        for (i, &t) in seq.iter().enumerate() {
            ix.fill_match_row(t, self.dict, &mut scratch.mask[i * w..(i + 1) * w]);
        }

        let bwords = ((n + 1) * qn).div_ceil(64).max(1);
        scratch.fwd.clear();
        scratch.fwd.resize(bwords, 0);
        scratch.alive.clear();
        scratch.alive.resize(bwords, 0);
        let (fwd, alive) = (&mut scratch.fwd, &mut scratch.alive);
        set_bit(fwd, self.fst.initial() as usize);
        for i in 0..n {
            let row = &scratch.mask[i * w..(i + 1) * w];
            for q in 0..qn {
                if !get_bit(fwd, i * qn + q) {
                    continue;
                }
                for tr in ix.state(q) {
                    if row[tr.word as usize] & tr.mask != 0 {
                        set_bit(fwd, (i + 1) * qn + tr.to as usize);
                    }
                }
            }
        }
        for q in 0..qn as u32 {
            if get_bit(fwd, n * qn + q as usize) && self.fst.is_final(q) {
                set_bit(alive, n * qn + q as usize);
            }
        }
        for i in (0..n).rev() {
            let row = &mut scratch.mask[i * w..(i + 1) * w];
            for q in 0..qn {
                if !get_bit(fwd, i * qn + q) {
                    continue;
                }
                let ok = ix.state(q).iter().any(|tr| {
                    row[tr.word as usize] & tr.mask != 0
                        && get_bit(alive, (i + 1) * qn + tr.to as usize)
                });
                if ok {
                    set_bit(alive, i * qn + q);
                }
            }
            // Fold aliveness into the match bits: one bit test then answers
            // "matches ∧ target alive" for both the DP and the range scan.
            for (d, &(_, to)) in ix.inputs().iter().enumerate() {
                if !get_bit(alive, (i + 1) * qn + to as usize) {
                    row[d / 64] &= !(1 << (d % 64));
                }
            }
        }
        get_bit(alive, self.fst.initial() as usize)
    }

    /// The backward pivot DP over the prepared tables. Leaves row 0 in
    /// `scratch.prev`/`prev_off`; each cell's set is sorted ascending with
    /// [`EPSILON`] marking the all-ε completion.
    fn flat_pivot_set(&self, seq: &[ItemId], scratch: &mut PivotScratch) {
        let ix = &self.index;
        let n = seq.len();
        let qn = self.fst.num_states();
        let w = ix.words();
        let l = ix.num_labels();

        // σ-filtered output arena per (position, interned label). Labels
        // whose transitions all miss (or are alive-pruned) at a position
        // get an empty range and kill their transitions in the DP.
        scratch.out_off.clear();
        scratch.outs.clear();
        for (i, &t) in seq.iter().enumerate() {
            let row = &scratch.mask[i * w..(i + 1) * w];
            for li in 0..l {
                let used = ix.label_mask(li).iter().zip(row).any(|(lm, m)| lm & m != 0);
                if !used {
                    scratch.out_off.push((0, 0));
                    continue;
                }
                let start = scratch.outs.len() as u32;
                scratch.outbuf.clear();
                ix.labels()[li].outputs(t, self.dict, &mut scratch.outbuf);
                scratch.outs.extend(
                    scratch
                        .outbuf
                        .iter()
                        .copied()
                        .filter(|&w| w <= self.last_frequent),
                );
                scratch.out_off.push((start, scratch.outs.len() as u32));
            }
        }

        // Row n: alive final coordinates complete with ε only.
        scratch.prev.clear();
        scratch.prev_off.clear();
        for q in 0..qn {
            if get_bit(&scratch.alive, n * qn + q) {
                let s = scratch.prev.len() as u32;
                scratch.prev.push(EPSILON);
                scratch.prev_off.push((s, s + 1));
            } else {
                scratch.prev_off.push((0, 0));
            }
        }

        for i in (0..n).rev() {
            scratch.cur.clear();
            scratch.cur_off.clear();
            let row = &scratch.mask[i * w..(i + 1) * w];
            for q in 0..qn {
                if !get_bit(&scratch.alive, i * qn + q) {
                    scratch.cur_off.push((0, 0));
                    continue;
                }
                scratch.acc.clear();
                for tr in ix.state(q) {
                    // Match + target-aliveness in one precomputed bit.
                    if row[tr.word as usize] & tr.mask == 0 {
                        continue;
                    }
                    let (rs, re) = scratch.prev_off[tr.to as usize];
                    if rs == re {
                        continue;
                    }
                    let rest = &scratch.prev[rs as usize..re as usize];
                    if tr.label < 0 {
                        // ε output: ⊕({ε}, rest) = rest.
                        merge_union(rest, &scratch.acc, &mut scratch.tmp);
                        std::mem::swap(&mut scratch.acc, &mut scratch.tmp);
                        continue;
                    }
                    let (os, oe) = scratch.out_off[i * l + tr.label as usize];
                    if os == oe {
                        continue; // dead under the σ filter
                    }
                    let outs = &scratch.outs[os as usize..oe as usize];
                    oplus_into(
                        outs,
                        rest,
                        &mut scratch.acc,
                        &mut scratch.tmp,
                        &mut scratch.tmp2,
                    );
                }
                let s = scratch.cur.len() as u32;
                scratch.cur.extend_from_slice(&scratch.acc);
                scratch.cur_off.push((s, scratch.cur.len() as u32));
            }
            std::mem::swap(&mut scratch.prev, &mut scratch.cur);
            std::mem::swap(&mut scratch.prev_off, &mut scratch.cur_off);
        }
    }

    /// `K^σ(T)` by explicit run enumeration (the "no grid" ablation and
    /// the DP's differential-test oracle). `budget` bounds the number of
    /// runs walked.
    pub fn pivots_enumerated(&self, seq: &[ItemId], budget: usize) -> Result<Vec<ItemId>> {
        let grid = Grid::build(self.fst, self.dict, seq);
        self.enumerated_set(seq, &grid, budget)
    }

    /// Like [`Self::pivots`], but computing the pivot set by run
    /// enumeration (used by D-SEQ's "no grid" ablation and as the oracle
    /// for the flat DP's property tests).
    pub fn pivots_enumerated_ranges(
        &self,
        seq: &[ItemId],
        budget: usize,
    ) -> Result<Vec<PivotRange>> {
        let grid = Grid::build(self.fst, self.dict, seq);
        let pivots = self.enumerated_set(seq, &grid, budget)?;
        if pivots.is_empty() {
            return Ok(Vec::new());
        }
        let mut scratch = PivotScratch::default();
        assert!(self.prepare(seq, &mut scratch), "pivots imply acceptance");
        let (first, last) = self
            .range_from_scratch(seq, &scratch)
            .expect("pivots imply a range");
        Ok(pivots
            .into_iter()
            .map(|item| PivotRange {
                item,
                first: first as u32,
                last: last as u32,
            })
            .collect())
    }

    fn enumerated_set(&self, seq: &[ItemId], grid: &Grid, budget: usize) -> Result<Vec<ItemId>> {
        if !grid.accepts() {
            return Ok(Vec::new());
        }
        let mut work = 0usize;
        let mut exhausted = false;
        let mut pivots: Vec<ItemId> = Vec::new();
        let mut sets: Vec<Vec<ItemId>> = Vec::new();
        let completed = runs::for_each_accepting_run(self.fst, self.dict, seq, grid, |path| {
            work += 1;
            if work > budget {
                exhausted = true;
                return false;
            }
            sets.clear();
            for (tr, &t) in path.iter().zip(seq) {
                let buf = self.filtered_outputs(tr, t);
                if buf.is_empty() {
                    return true; // dead under the σ filter
                }
                if buf != [EPSILON] {
                    sets.push(buf);
                }
            }
            for p in merge_pivots(&sets) {
                if !pivots.contains(&p) {
                    pivots.push(p);
                }
            }
            true
        });
        if exhausted || !completed {
            return Err(Error::ResourceExhausted(format!(
                "pivot enumeration exceeded budget of {budget}"
            )));
        }
        pivots.sort_unstable();
        Ok(pivots)
    }

    /// The safety-clamped rewritten range shared by all pivots of `seq`, or
    /// `None` if the FST rejects the sequence.
    pub fn safe_range(&self, seq: &[ItemId]) -> Option<(usize, usize)> {
        let mut scratch = PivotScratch::default();
        if seq.is_empty() || !self.prepare(seq, &mut scratch) {
            return None;
        }
        self.range_from_scratch(seq, &scratch)
    }

    /// The rewritten range over prepared scratch tables (`prepare` must
    /// have returned `true`).
    fn range_from_scratch(&self, seq: &[ItemId], scratch: &PivotScratch) -> Option<(usize, usize)> {
        if seq.is_empty() {
            return None;
        }
        let first = self.safe_front(seq, scratch);
        if first == seq.len() {
            // Every position idles in the initial state: only the empty
            // candidate exists. Keep a minimal non-empty range.
            return Some((0, seq.len() - 1));
        }
        let last = seq.len() - 1 - self.safe_back(seq, scratch, first);
        Some((first, last))
    }

    /// Number of leading positions provably droppable: while the only alive
    /// coordinate is the initial state and all its alive transitions are
    /// ε-output self-loops, every alive run idles there.
    fn safe_front(&self, seq: &[ItemId], scratch: &PivotScratch) -> usize {
        let ix = &self.index;
        let qn = self.fst.num_states();
        let w = ix.words();
        let initial = self.fst.initial();
        let mut i = 0;
        while i < seq.len() {
            if !get_bit(&scratch.alive, i * qn + initial as usize) {
                return i;
            }
            let row = &scratch.mask[i * w..(i + 1) * w];
            for tr in ix.state(initial as usize) {
                if row[tr.word as usize] & tr.mask == 0 {
                    continue; // no match, or the target is a dead end
                }
                if tr.label >= 0 || tr.to != initial {
                    return i;
                }
            }
            i += 1;
        }
        i
    }

    /// Number of trailing positions provably droppable (symmetric to
    /// [`Self::safe_front`]): position `j` may go while every
    /// forward-reachable coordinate `(j, s)` satisfies "alive iff final" and
    /// all alive transitions produce ε — then ending at `j` accepts exactly
    /// the runs that previously consumed the suffix silently.
    fn safe_back(&self, seq: &[ItemId], scratch: &PivotScratch, first: usize) -> usize {
        let ix = &self.index;
        let n = seq.len();
        let qn = self.fst.num_states();
        let w = ix.words();
        let mut dropped = 0;
        'outer: while dropped + first + 1 < n {
            let j = n - 1 - dropped;
            let row = &scratch.mask[j * w..(j + 1) * w];
            for s in 0..qn as u32 {
                if !get_bit(&scratch.fwd, j * qn + s as usize) {
                    continue;
                }
                let alive = get_bit(&scratch.alive, j * qn + s as usize);
                if alive != self.fst.is_final(s) {
                    break 'outer;
                }
                if !alive {
                    continue;
                }
                for tr in ix.state(s as usize) {
                    // Pruned bit = matches ∧ target alive; label ≥ 0 =
                    // produces output.
                    if row[tr.word as usize] & tr.mask != 0 && tr.label >= 0 {
                        break 'outer;
                    }
                }
            }
            dropped += 1;
        }
        dropped
    }

    /// The largest frequent fid this search filters with.
    pub fn last_frequent(&self) -> ItemId {
        self.last_frequent
    }

    /// The shared transition index derived at construction (see the
    /// [reuse contract](desq_core::fst::index)).
    pub fn index(&self) -> &FstIndex {
        &self.index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desq_core::fst::candidates;
    use desq_core::toy;

    #[test]
    fn toy_pivots_match_fig3() {
        let fx = toy::fixture();
        let search = PivotSearch::new(&fx.fst, &fx.dict, fx.dict.last_frequent(2));
        let expected: [&[ItemId]; 5] = [&[fx.a1, fx.c], &[fx.a1], &[], &[], &[fx.a1]];
        for (t, expect) in fx.db.sequences.iter().zip(expected) {
            let got: Vec<ItemId> = search.pivots(t).iter().map(|p| p.item).collect();
            assert_eq!(got, expect, "K({})", fx.dict.render(t));
        }
    }

    #[test]
    fn flat_dp_and_enumeration_agree_on_toy() {
        let fx = toy::fixture();
        let mut scratch = PivotScratch::default();
        for sigma in 1..=5 {
            let search = PivotSearch::new(&fx.fst, &fx.dict, fx.dict.last_frequent(sigma));
            for seq in &fx.db.sequences {
                let dp: Vec<ItemId> = search
                    .pivots_with(seq, &mut scratch)
                    .iter()
                    .map(|p| p.item)
                    .collect();
                let enumerated = search.pivots_enumerated(seq, usize::MAX).unwrap();
                assert_eq!(dp, enumerated, "σ={sigma}, seq {seq:?}");
            }
        }
    }

    #[test]
    fn scratch_reuse_matches_fresh_scratch() {
        // One scratch across all sequences and σ values must behave like a
        // fresh one per call (no state leaks between sequences).
        let fx = toy::fixture();
        let mut shared = PivotScratch::default();
        for sigma in 1..=5 {
            let search = PivotSearch::new(&fx.fst, &fx.dict, fx.dict.last_frequent(sigma));
            for seq in &fx.db.sequences {
                let reused = search.pivots_with(seq, &mut shared);
                let fresh = search.pivots(seq);
                assert_eq!(reused, fresh, "σ={sigma}, seq {seq:?}");
            }
        }
    }

    #[test]
    fn pivots_match_candidate_definition_on_toy() {
        let fx = toy::fixture();
        for sigma in 1..=5u64 {
            let search = PivotSearch::new(&fx.fst, &fx.dict, fx.dict.last_frequent(sigma));
            for seq in &fx.db.sequences {
                let cands =
                    candidates::generate(&fx.fst, &fx.dict, seq, Some(sigma), usize::MAX).unwrap();
                let mut expect: Vec<ItemId> = cands
                    .iter()
                    .map(|c| desq_core::sequence::pivot(c))
                    .collect();
                expect.sort_unstable();
                expect.dedup();
                let got: Vec<ItemId> = search.pivots(seq).iter().map(|p| p.item).collect();
                assert_eq!(got, expect, "σ={sigma}, seq {seq:?}");
            }
        }
    }

    #[test]
    fn rewriting_trims_t2_prefix() {
        let fx = toy::fixture();
        let search = PivotSearch::new(&fx.fst, &fx.dict, fx.dict.last_frequent(2));
        let t2 = &fx.db.sequences[1];
        let pr = search.pivots(t2);
        assert_eq!(pr.len(), 1);
        assert_eq!((pr[0].first, pr[0].last), (2, 6));
    }

    #[test]
    fn rewriting_preserves_candidates_on_toy() {
        let fx = toy::fixture();
        for sigma in 1..=4u64 {
            let search = PivotSearch::new(&fx.fst, &fx.dict, fx.dict.last_frequent(sigma));
            for seq in &fx.db.sequences {
                for pr in search.pivots(seq) {
                    let trimmed = &seq[pr.first as usize..=pr.last as usize];
                    let full =
                        candidates::generate(&fx.fst, &fx.dict, seq, Some(sigma), usize::MAX)
                            .unwrap();
                    let cut =
                        candidates::generate(&fx.fst, &fx.dict, trimmed, Some(sigma), usize::MAX)
                            .unwrap();
                    assert_eq!(full, cut, "σ={sigma}, pivot {} of {seq:?}", pr.item);
                }
            }
        }
    }

    #[test]
    fn enumerated_ranges_match_flat_ranges() {
        let fx = toy::fixture();
        for sigma in 1..=4u64 {
            let search = PivotSearch::new(&fx.fst, &fx.dict, fx.dict.last_frequent(sigma));
            for seq in &fx.db.sequences {
                let dp = search.pivots(seq);
                let en = search.pivots_enumerated_ranges(seq, usize::MAX).unwrap();
                assert_eq!(dp, en, "σ={sigma}, seq {seq:?}");
            }
        }
    }

    #[test]
    fn enumeration_budget_respected() {
        let fx = toy::fixture();
        let search = PivotSearch::new(&fx.fst, &fx.dict, fx.dict.last_frequent(1));
        let t2 = &fx.db.sequences[1];
        let err = search.pivots_enumerated(t2, 1).unwrap_err();
        assert!(matches!(err, Error::ResourceExhausted(_)));
    }

    #[test]
    fn empty_and_rejected_sequences_have_no_pivots() {
        let fx = toy::fixture();
        let search = PivotSearch::new(&fx.fst, &fx.dict, fx.dict.last_frequent(2));
        assert!(search.pivots(&[]).is_empty());
        assert!(search.pivots(&fx.db.sequences[2]).is_empty()); // T3 rejected
        assert!(search.safe_range(&[]).is_none());
    }
}
