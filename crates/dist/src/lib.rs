//! # desq-dist
//!
//! The distributed frequent-sequence-mining algorithms of
//!
//! > A. Renz-Wieland, M. Bertsch, R. Gemulla:
//! > *Scalable Frequent Sequence Mining with Flexible Subsequence Constraints*,
//! > ICDE 2019.
//!
//! All algorithms follow the item-based partitioning framework of Alg. 1:
//! one map-shuffle-reduce round over the [`desq_bsp::Engine`]. Mappers send,
//! for every input sequence `T` and every *pivot item* `p ∈ K^σ(T)`, a
//! representation of the candidate subsequences of `T` with pivot `p` to
//! partition `P_p`; reducers mine each partition independently. The
//! algorithms differ only in the representation they ship:
//!
//! * [`naive`](mod@naive) — NAÏVE sends the candidate subsequences `G_π(T)` verbatim,
//!   SEMI-NAÏVE the frequency-filtered `G^σ_π(T)` (Sec. III-C);
//! * [`dseq`] — D-SEQ sends *rewritten input sequences* `ρ_p(T)` and runs
//!   restricted DESQ-DFS per partition (Sec. V);
//! * [`dcand`] — D-CAND sends *NFAs* that compactly represent the pivot-`p`
//!   candidates, with optional minimization and weighted aggregation of
//!   identical NFAs (Sec. VI).
//!
//! Supporting machinery: [`PivotSearch`] computes pivot sets `K^σ(T)` either
//! by dynamic programming over the position–state grid or by run enumeration
//! (Sec. V-A/V-B), [`dcand::merge_pivots`] is the ⊕ pivot-merge of Th. 1,
//! [`dcand::nfa`] holds the trie/NFA construction with byte-level
//! serialization for shuffle accounting, and [`patterns`] is the constraint
//! library of Tab. III. `docs/ARCHITECTURE.md` in the repository root
//! traces the end-to-end data flow of each algorithm through the flat
//! substrate and the work-stealing schedulers.

pub mod algo;
pub mod dcand;
pub mod dseq;
pub mod naive;
pub mod patterns;
pub mod pivots;

pub use dcand::DCandConfig;
pub use dseq::DSeqConfig;
pub use naive::NaiveConfig;
pub use pivots::{PivotRange, PivotScratch, PivotSearch};

use desq_bsp::JobMetrics;
use desq_core::{MiningMetrics, Sequence};

/// Outcome of one distributed mining job — the workspace-wide uniform
/// result type, re-exported from [`desq_core::mining`].
pub use desq_core::MiningResult;

/// Converts the BSP engine's per-job measurements into the uniform
/// [`MiningMetrics`] of the mining API.
pub fn metrics_from_job(
    job: JobMetrics,
    wall_nanos: u64,
    workers: usize,
    input_sequences: u64,
) -> MiningMetrics {
    MiningMetrics {
        wall_nanos,
        map_nanos: job.map_nanos,
        reduce_nanos: job.reduce_nanos,
        input_sequences,
        emitted_records: job.emitted_records,
        shuffle_records: job.shuffle_records,
        shuffle_payloads: job.shuffle_payloads,
        shuffle_bytes: job.shuffle_bytes,
        reducer_bytes: job.reducer_bytes,
        output_records: job.output_records,
        workers: workers as u64,
        // The BSP engine reports phase times, not a per-worker breakdown
        // (see the field's rustdoc); its reduce-side scheduler counters
        // carry over directly.
        worker_nanos: Vec::new(),
        tasks: job.reduce_tasks,
        steals: job.reduce_steals,
        retried_tasks: job.retried_tasks,
        peer_timeouts: job.peer_timeouts,
        max_task_nanos: job.max_task_nanos,
        cancelled: job.cancelled,
        // FST sizes are per-session, not per-job: the session layer fills
        // them in after the run (MiningMetrics::record_fst).
        fst_states_before: 0,
        fst_states_after: 0,
        fst_transitions_before: 0,
        fst_transitions_after: 0,
    }
}

/// How a distributed job executes its BSP round.
///
/// [`Exec::Local`] is the classic single-process path (the default
/// everywhere). [`Exec::Via`] drives the *same* job over an explicit
/// [`desq_bsp::ShuffleTransport`] — pass a
/// [`desq_bsp::NetCoordinator`] to farm the map and reduce tasks out to
/// worker processes. [`Exec::Worker`] turns this process into one of those
/// workers: it connects to the coordinator and serves tasks against its
/// own copy of the partitions (every process must build the same corpus
/// and configuration; only task ids and bytes cross the wire).
pub enum Exec<'a> {
    /// Single-process execution on the engine's thread pool.
    Local,
    /// Drive the job through an explicit shuffle transport.
    Via(&'a dyn desq_bsp::ShuffleTransport),
    /// Serve the job as a worker connected to a coordinator.
    Worker(std::net::SocketAddr, &'a desq_bsp::NetConfig),
}

/// Total input sequences across the map partitions.
pub(crate) fn input_len(parts: &[&[Sequence]]) -> u64 {
    parts.iter().map(|p| p.len() as u64).sum()
}

/// Maps an engine error back into the workspace error type.
pub(crate) fn from_bsp(e: desq_bsp::Error) -> desq_core::Error {
    match e {
        desq_bsp::Error::ResourceExhausted(m) => desq_core::Error::ResourceExhausted(m),
        desq_bsp::Error::Decode(m) => desq_core::Error::Decode(m),
        desq_bsp::Error::DeadlineExceeded(m) => desq_core::Error::DeadlineExceeded(m),
        desq_bsp::Error::Cancelled(m) => desq_core::Error::Cancelled(m),
        desq_bsp::Error::WorkerPanicked(m) => desq_core::Error::WorkerPanicked(m),
        desq_bsp::Error::Worker(m) => desq_core::Error::Invalid(m),
        desq_bsp::Error::PeerUnreachable(m) => desq_core::Error::PeerUnreachable(m),
        desq_bsp::Error::PeerTimedOut(m) => desq_core::Error::PeerTimedOut(m),
    }
}

/// Maps a workspace error into the engine error type (for map/reduce
/// closures running inside a BSP job).
pub(crate) fn to_bsp(e: desq_core::Error) -> desq_bsp::Error {
    match e {
        desq_core::Error::ResourceExhausted(m) => desq_bsp::Error::ResourceExhausted(m),
        desq_core::Error::Decode(m) => desq_bsp::Error::Decode(m),
        desq_core::Error::DeadlineExceeded(m) => desq_bsp::Error::DeadlineExceeded(m),
        desq_core::Error::Cancelled(m) => desq_bsp::Error::Cancelled(m),
        desq_core::Error::WorkerPanicked(m) => desq_bsp::Error::WorkerPanicked(m),
        desq_core::Error::PeerUnreachable(m) => desq_bsp::Error::PeerUnreachable(m),
        desq_core::Error::PeerTimedOut(m) => desq_bsp::Error::PeerTimedOut(m),
        other => desq_bsp::Error::Worker(other.to_string()),
    }
}
