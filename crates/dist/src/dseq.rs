//! D-SEQ: distributed mining with the input-sequence representation
//! (Sec. V of the paper).
//!
//! The mapper computes the pivot set `K^σ(T)` of every input sequence —
//! with the flat grid DP of [`PivotSearch::pivots_into`] (per-map-task
//! [`PivotScratch`], no per-sequence allocation) or, in the "no grid"
//! ablation, by bounded run enumeration — serializes the (optionally
//! rewritten) input **once** with the delta item codec, and emits the same
//! payload bytes to every pivot partition. The engine's combiner
//! aggregates identical `(pivot, payload)` records into weighted ones and
//! interns shared payload bytes per bucket chunk, so a sequence with many
//! pivots ships its items once per bucket rather than once per pivot.
//! Reducers decode the borrowed payload slices into a flat item arena and
//! run partition-restricted DESQ-DFS ([`desq_miner::LocalMiner`]) over
//! [`desq_miner::WeightedInput`] borrows, sharing one
//! [`desq_core::fst::FstIndex`] across all pivot partitions: expansions
//! never use items above the pivot, only pivot sequences are emitted, and
//! the early-stopping heuristic prunes snapshots that can no longer
//! produce the pivot (Sec. V-C).

use desq_bsp::{decode_item_seq, encode_item_seq, Combiner, Engine};
use desq_core::fx::FxHashMap;
use desq_core::{Dictionary, Fst, ItemId, Result, Sequence};
use desq_miner::{LocalMiner, MinerConfig, SeqCore};

use crate::pivots::{PivotRange, PivotScratch, PivotSearch};
use crate::{from_bsp, to_bsp, Exec, MiningResult};

/// Configuration of the D-SEQ algorithm. The boolean flags correspond to
/// the cumulative enhancements of Fig. 10a.
#[derive(Debug, Clone, Copy)]
pub struct DSeqConfig {
    /// Minimum support threshold σ.
    pub sigma: u64,
    /// Compute pivot sets by grid DP (otherwise: run enumeration bounded by
    /// `run_budget` — can exhaust the budget on loose constraints).
    pub use_grid: bool,
    /// Ship rewritten (trimmed) sequences instead of full ones.
    pub rewrite: bool,
    /// Early stopping in the partition-local miners.
    pub early_stop: bool,
    /// Budget for run enumeration when `use_grid` is off; the paper's OOM
    /// analog.
    pub run_budget: usize,
}

impl DSeqConfig {
    /// Full D-SEQ at threshold `sigma` (grid, rewriting and early stopping
    /// on).
    pub fn new(sigma: u64) -> DSeqConfig {
        DSeqConfig {
            sigma,
            use_grid: true,
            rewrite: true,
            early_stop: true,
            run_budget: usize::MAX,
        }
    }

    /// Overrides the run-enumeration budget.
    pub fn with_run_budget(mut self, budget: usize) -> DSeqConfig {
        self.run_budget = budget;
        self
    }
}

/// The workhorse behind [`crate::algo::DSeq`]: single-process execution.
pub(crate) fn d_seq_impl(
    engine: &Engine,
    parts: &[&[Sequence]],
    fst: &Fst,
    dict: &Dictionary,
    config: DSeqConfig,
) -> Result<MiningResult> {
    Ok(d_seq_exec(engine, parts, fst, dict, config, Exec::Local)?
        .expect("local execution returns a result"))
}

/// Runs D-SEQ over an explicit shuffle transport — pass
/// [`desq_bsp::transport::InProcess`] for a single-process run or a
/// [`desq_bsp::NetCoordinator`] to drive worker processes.
pub fn d_seq_via(
    engine: &Engine,
    transport: &dyn desq_bsp::ShuffleTransport,
    parts: &[&[Sequence]],
    fst: &Fst,
    dict: &Dictionary,
    config: DSeqConfig,
) -> Result<MiningResult> {
    Ok(
        d_seq_exec(engine, parts, fst, dict, config, Exec::Via(transport))?
            .expect("driver execution returns a result"),
    )
}

/// Serves a D-SEQ job as a worker process: connects to the coordinator at
/// `addr` and executes assigned tasks until the job ends. The corpus,
/// partitioning and configuration must match the coordinator's.
pub fn d_seq_worker(
    engine: &Engine,
    addr: std::net::SocketAddr,
    net: &desq_bsp::NetConfig,
    parts: &[&[Sequence]],
    fst: &Fst,
    dict: &Dictionary,
    config: DSeqConfig,
) -> Result<()> {
    d_seq_exec(engine, parts, fst, dict, config, Exec::Worker(addr, net))?;
    Ok(())
}

fn d_seq_exec(
    engine: &Engine,
    parts: &[&[Sequence]],
    fst: &Fst,
    dict: &Dictionary,
    config: DSeqConfig,
    exec: Exec<'_>,
) -> Result<Option<MiningResult>> {
    desq_core::mining::validate_sigma(config.sigma)?;
    let t0 = std::time::Instant::now();
    let last_frequent = dict.last_frequent(config.sigma);
    let search = PivotSearch::new(fst, dict, last_frequent);
    // One transition index, shared by the mapper's pivot search (via
    // `search`) and every pivot partition's LocalMiner.
    let index = search.index();

    let map = |part: &[Sequence], out: &mut Combiner<ItemId>| {
        // Per-task scratch, hoisted out of the per-sequence loop.
        let mut scratch = PivotScratch::default();
        let mut ranges: Vec<PivotRange> = Vec::new();
        let mut payload: Vec<u8> = Vec::new();
        for seq in part {
            if config.use_grid {
                search.pivots_into(seq, &mut scratch, &mut ranges);
            } else {
                ranges = search
                    .pivots_enumerated_ranges(seq, config.run_budget)
                    .map_err(to_bsp)?;
            }
            let Some(pr0) = ranges.first() else { continue };
            // All pivots share the rewritten range: serialize once, emit
            // the same bytes per pivot (the combiner interns them).
            let items = if config.rewrite {
                &seq[pr0.first as usize..=pr0.last as usize]
            } else {
                seq.as_slice()
            };
            payload.clear();
            encode_item_seq(items, &mut payload);
            for pr in &ranges {
                out.emit(&pr.item, &payload, 1);
            }
        }
        Ok(())
    };
    // Per-reduce-worker cache of decoded payloads and their
    // pivot-independent simulation cores, keyed by the identity of the
    // borrowed payload slice (payloads borrow from the shuffle buffers,
    // stable for the whole reduce phase, so the cache stays valid across
    // the work-stealing scheduler's per-pivot tasks). A sequence shipped
    // to many pivot partitions mined by one worker is decoded and
    // core-built once; each pivot only rebuilds the pivot-dependent
    // output arenas.
    type CoreCache = FxHashMap<(usize, usize), (Vec<ItemId>, SeqCore)>;
    let reduce = |cache: &mut CoreCache,
                  &p: &ItemId,
                  inputs: &[(&[u8], u64)],
                  emit: &mut dyn FnMut((Sequence, u64))|
     -> desq_bsp::Result<()> {
        let miner_config = MinerConfig::for_pivot(config.sigma, p, config.early_stop)
            .with_last_frequent(last_frequent);
        let miner = LocalMiner::with_index(fst, dict, miner_config, index);
        for &(bytes, _) in inputs {
            let key = (bytes.as_ptr() as usize, bytes.len());
            if let std::collections::hash_map::Entry::Vacant(slot) = cache.entry(key) {
                let mut items: Vec<ItemId> = Vec::new();
                let mut slice = bytes;
                decode_item_seq(&mut slice, &mut items)?;
                let core = miner.prepare_core(&items);
                slot.insert((items, core));
            }
        }
        let prepared: Vec<(&[ItemId], &SeqCore, u64)> = inputs
            .iter()
            .map(|&(bytes, w)| {
                let (items, core) = &cache[&(bytes.as_ptr() as usize, bytes.len())];
                (items.as_slice(), core, w)
            })
            .collect();
        for pattern in miner.mine_prepared(&prepared) {
            emit(pattern);
        }
        Ok(())
    };

    let (patterns, job) = match exec {
        Exec::Local => engine
            .map_combine_reduce_with(parts, map, CoreCache::default, reduce)
            .map_err(from_bsp)?,
        Exec::Via(transport) => engine
            .map_combine_reduce_via(transport, parts, map, CoreCache::default, reduce)
            .map_err(from_bsp)?,
        Exec::Worker(addr, net) => {
            engine
                .run_worker(addr, net, parts, map, CoreCache::default, reduce)
                .map_err(from_bsp)?;
            return Ok(None);
        }
    };
    let patterns = desq_miner::sort_patterns(patterns);
    let metrics = crate::metrics_from_job(
        job,
        t0.elapsed().as_nanos() as u64,
        engine.workers(),
        crate::input_len(parts),
    );
    Ok(Some(MiningResult { patterns, metrics }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use desq_core::mining::{Miner, MiningContext};
    use desq_core::{toy, Error};

    /// Brute-force DESQ-COUNT reference through the Miner trait.
    fn reference(fx: &toy::Toy, sigma: u64) -> Vec<(Sequence, u64)> {
        desq_miner::algo::DesqCount
            .mine(&MiningContext::sequential(&fx.db, &fx.dict, sigma).with_fst(&fx.fst))
            .unwrap()
            .patterns
    }

    #[test]
    fn toy_matches_paper_result() {
        let fx = toy::fixture();
        let engine = Engine::new(2);
        let parts = fx.db.partition(2);
        let res = d_seq_impl(&engine, &parts, &fx.fst, &fx.dict, DSeqConfig::new(2)).unwrap();
        let rendered: Vec<(String, u64)> = res
            .patterns
            .iter()
            .map(|(s, f)| (fx.dict.render(s), *f))
            .collect();
        assert_eq!(
            rendered,
            vec![
                ("a1 b".to_string(), 3),
                ("a1 A b".to_string(), 2),
                ("a1 a1 b".to_string(), 2),
            ]
        );
    }

    #[test]
    fn all_ablations_match_reference_on_toy() {
        let fx = toy::fixture();
        let engine = Engine::new(3);
        let parts = fx.db.partition(2);
        for sigma in 1..=4 {
            let reference = reference(&fx, sigma);
            for use_grid in [true, false] {
                for rewrite in [true, false] {
                    for early_stop in [true, false] {
                        let cfg = DSeqConfig {
                            sigma,
                            use_grid,
                            rewrite,
                            early_stop,
                            run_budget: usize::MAX,
                        };
                        let res = d_seq_impl(&engine, &parts, &fx.fst, &fx.dict, cfg).unwrap();
                        assert_eq!(
                            res.patterns, reference,
                            "σ={sigma} grid={use_grid} rewrite={rewrite} stop={early_stop}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn rewriting_shrinks_shuffle() {
        let fx = toy::fixture();
        let engine = Engine::new(1);
        let parts = fx.db.partition(1);
        let full = d_seq_impl(
            &engine,
            &parts,
            &fx.fst,
            &fx.dict,
            DSeqConfig {
                rewrite: false,
                ..DSeqConfig::new(2)
            },
        )
        .unwrap();
        let rewritten = d_seq_impl(&engine, &parts, &fx.fst, &fx.dict, DSeqConfig::new(2)).unwrap();
        // T2 loses its two leading e's.
        assert!(rewritten.metrics.shuffle_bytes < full.metrics.shuffle_bytes);
        assert_eq!(rewritten.patterns, full.patterns);
    }

    #[test]
    fn agrees_with_sequential_dfs() {
        let fx = toy::fixture();
        let engine = Engine::new(2);
        let parts = fx.db.partition(3);
        for sigma in 1..=5 {
            let seq = desq_miner::algo::DesqDfs
                .mine(&MiningContext::sequential(&fx.db, &fx.dict, sigma).with_fst(&fx.fst))
                .unwrap()
                .patterns;
            let dist =
                d_seq_impl(&engine, &parts, &fx.fst, &fx.dict, DSeqConfig::new(sigma)).unwrap();
            assert_eq!(dist.patterns, seq, "σ={sigma}");
        }
    }

    #[test]
    fn no_grid_ablation_respects_budget() {
        let fx = toy::fixture();
        let engine = Engine::new(1);
        let parts = fx.db.partition(1);
        let cfg = DSeqConfig {
            use_grid: false,
            ..DSeqConfig::new(2).with_run_budget(1)
        };
        let err = d_seq_impl(&engine, &parts, &fx.fst, &fx.dict, cfg).unwrap_err();
        assert!(matches!(err, Error::ResourceExhausted(_)));
    }

    #[test]
    fn zero_sigma_rejected() {
        let fx = toy::fixture();
        let engine = Engine::new(1);
        let parts = fx.db.partition(1);
        assert!(matches!(
            d_seq_impl(&engine, &parts, &fx.fst, &fx.dict, DSeqConfig::new(0)),
            Err(Error::Invalid(_))
        ));
    }
}
