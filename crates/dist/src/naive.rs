//! The NAÏVE and SEMI-NAÏVE baselines (Sec. III-C of the paper): ship the
//! candidate subsequences themselves.
//!
//! NAÏVE enumerates the full `G_π(T)` per input sequence and sends every
//! candidate to the partition of its pivot item; SEMI-NAÏVE first drops
//! candidates containing infrequent items (`G^σ_π(T)`), which is valid by
//! support antimonotonicity. Both are exact but explode on loose
//! constraints — candidate generation is bounded by
//! [`NaiveConfig::budget`], the analog of the paper's executor memory
//! limit.
//!
//! Since PR 5 the mappers run on the flat counting path
//! ([`desq_core::fst::flat`]): a [`RunWalker`] enumerates candidates over
//! pre-filtered flat run tables, and each per-sequence-distinct candidate
//! is emitted through the engine's byte-payload combiner as its canonical
//! `encode_item_seq` bytes, keyed by pivot. The combiner dedups identical
//! `(pivot, candidate)` pairs map-side, so a reducer receives every
//! distinct candidate exactly once with its global frequency as the
//! combined weight — the reduce phase is a σ-filter plus one decode, with
//! no hash map at all.

use desq_bsp::{Combiner, Engine};
use desq_core::codec::decode_item_seq;
use desq_core::fst::{CandidateCounter, FstIndex, RunScratch, RunWalker};
use desq_core::{sequence, Dictionary, Fst, ItemId, Result, Sequence};

use crate::{from_bsp, to_bsp, Exec, MiningResult};

/// Configuration of the NAÏVE / SEMI-NAÏVE baselines.
#[derive(Debug, Clone, Copy)]
pub struct NaiveConfig {
    /// Minimum support threshold σ.
    pub sigma: u64,
    /// SEMI-NAÏVE's candidate filter: drop candidates containing infrequent
    /// items before the shuffle.
    pub filter: bool,
    /// Per-sequence candidate-generation budget; exceeding it aborts with
    /// [`desq_core::Error::ResourceExhausted`] (the paper's OOM analog).
    pub budget: usize,
}

impl NaiveConfig {
    /// The NAÏVE variant: unfiltered `G_π(T)`.
    pub fn naive(sigma: u64) -> NaiveConfig {
        NaiveConfig {
            sigma,
            filter: false,
            budget: usize::MAX,
        }
    }

    /// The SEMI-NAÏVE variant: frequency-filtered `G^σ_π(T)`.
    pub fn semi_naive(sigma: u64) -> NaiveConfig {
        NaiveConfig {
            sigma,
            filter: true,
            budget: usize::MAX,
        }
    }

    /// Overrides the candidate-generation budget.
    pub fn with_budget(mut self, budget: usize) -> NaiveConfig {
        self.budget = budget;
        self
    }
}

/// The workhorse behind [`naive`], [`semi_naive`] and [`crate::algo::Naive`]:
/// single-process execution.
pub(crate) fn naive_impl(
    engine: &Engine,
    parts: &[&[Sequence]],
    fst: &Fst,
    dict: &Dictionary,
    config: NaiveConfig,
) -> Result<MiningResult> {
    Ok(naive_exec(engine, parts, fst, dict, config, Exec::Local)?
        .expect("local execution returns a result"))
}

/// Runs NAÏVE / SEMI-NAÏVE over an explicit shuffle transport (see
/// [`crate::dseq::d_seq_via`] for the contract).
pub fn naive_via(
    engine: &Engine,
    transport: &dyn desq_bsp::ShuffleTransport,
    parts: &[&[Sequence]],
    fst: &Fst,
    dict: &Dictionary,
    config: NaiveConfig,
) -> Result<MiningResult> {
    Ok(
        naive_exec(engine, parts, fst, dict, config, Exec::Via(transport))?
            .expect("driver execution returns a result"),
    )
}

/// Serves a NAÏVE / SEMI-NAÏVE job as a worker process connected to the
/// coordinator at `addr`.
pub fn naive_worker(
    engine: &Engine,
    addr: std::net::SocketAddr,
    net: &desq_bsp::NetConfig,
    parts: &[&[Sequence]],
    fst: &Fst,
    dict: &Dictionary,
    config: NaiveConfig,
) -> Result<()> {
    naive_exec(engine, parts, fst, dict, config, Exec::Worker(addr, net))?;
    Ok(())
}

fn naive_exec(
    engine: &Engine,
    parts: &[&[Sequence]],
    fst: &Fst,
    dict: &Dictionary,
    config: NaiveConfig,
    exec: Exec<'_>,
) -> Result<Option<MiningResult>> {
    desq_core::mining::validate_sigma(config.sigma)?;
    let t0 = std::time::Instant::now();
    let index = FstIndex::new(fst);
    let max_item = if config.filter {
        dict.last_frequent(config.sigma)
    } else {
        ItemId::MAX
    };

    let map = |part: &[Sequence], out: &mut Combiner<ItemId>| {
        let walker = RunWalker::new(fst, dict, &index, max_item);
        let mut scratch = RunScratch::default();
        let mut counter = CandidateCounter::with_keys();
        for seq in part {
            walker
                .count_candidates(seq, 1, config.budget, &mut scratch, &mut counter, |_, _| {})
                .map_err(to_bsp)?;
        }
        // Drain the partition's interned counts: each distinct candidate is
        // emitted once with its accumulated weight (a mapper-level combine
        // on top of the engine's own).
        for (items, bytes, count) in counter.iter_with_keys() {
            // Interned candidates are non-empty, so the pivot is never ε.
            out.emit(&sequence::pivot(items), bytes, count);
        }
        Ok(())
    };
    // The combiner merged identical (pivot, candidate) pairs across the
    // whole job, so each payload's weight is its global frequency.
    let reduce = |_p: &ItemId, cands: &[(&[u8], u64)], emit: &mut dyn FnMut((Sequence, u64))| {
        for &(bytes, freq) in cands {
            if freq >= config.sigma {
                let mut c: Sequence = Vec::new();
                let mut slice = bytes;
                decode_item_seq(&mut slice, &mut c).map_err(to_bsp)?;
                emit((c, freq));
            }
        }
        Ok(())
    };

    // The via/worker paths need the stateful reduce shape; unit state
    // makes the stateless σ-filter fit it.
    let reduce_with =
        |_: &mut (), p: &ItemId, cands: &[(&[u8], u64)], emit: &mut dyn FnMut((Sequence, u64))| {
            reduce(p, cands, emit)
        };
    let (patterns, job) = match exec {
        Exec::Local => engine
            .map_combine_reduce(parts, map, reduce)
            .map_err(from_bsp)?,
        Exec::Via(transport) => engine
            .map_combine_reduce_via(transport, parts, map, || (), reduce_with)
            .map_err(from_bsp)?,
        Exec::Worker(addr, net) => {
            engine
                .run_worker(addr, net, parts, map, || (), reduce_with)
                .map_err(from_bsp)?;
            return Ok(None);
        }
    };
    let patterns = desq_miner::sort_patterns(patterns);
    let metrics = crate::metrics_from_job(
        job,
        t0.elapsed().as_nanos() as u64,
        engine.workers(),
        crate::input_len(parts),
    );
    Ok(Some(MiningResult { patterns, metrics }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use desq_core::mining::{Miner, MiningContext};
    use desq_core::{toy, Error};

    #[test]
    fn both_variants_match_reference_on_toy() {
        let fx = toy::fixture();
        let engine = Engine::new(2);
        let parts = fx.db.partition(2);
        for sigma in 1..=4 {
            let reference = desq_miner::algo::DesqCount
                .mine(&MiningContext::sequential(&fx.db, &fx.dict, sigma).with_fst(&fx.fst))
                .unwrap()
                .patterns;
            let nv = naive_impl(
                &engine,
                &parts,
                &fx.fst,
                &fx.dict,
                NaiveConfig::naive(sigma),
            )
            .unwrap();
            assert_eq!(nv.patterns, reference, "NAIVE σ={sigma}");
            let sn = naive_impl(
                &engine,
                &parts,
                &fx.fst,
                &fx.dict,
                NaiveConfig::semi_naive(sigma),
            )
            .unwrap();
            assert_eq!(sn.patterns, reference, "SEMI-NAIVE σ={sigma}");
        }
    }

    #[test]
    fn filter_shrinks_shuffle() {
        let fx = toy::fixture();
        let engine = Engine::new(2);
        let parts = fx.db.partition(2);
        let nv = naive_impl(&engine, &parts, &fx.fst, &fx.dict, NaiveConfig::naive(2)).unwrap();
        let sn = naive_impl(
            &engine,
            &parts,
            &fx.fst,
            &fx.dict,
            NaiveConfig::semi_naive(2),
        )
        .unwrap();
        // T2's 11 raw candidates collapse to 3 filtered ones, etc.
        assert!(sn.metrics.shuffle_records < nv.metrics.shuffle_records);
        assert!(sn.metrics.shuffle_bytes < nv.metrics.shuffle_bytes);
    }

    #[test]
    fn budget_zero_errors_on_matching_input() {
        let fx = toy::fixture();
        let engine = Engine::new(1);
        let parts = fx.db.partition(1);
        let err = naive_impl(
            &engine,
            &parts,
            &fx.fst,
            &fx.dict,
            NaiveConfig::naive(2).with_budget(1),
        )
        .unwrap_err();
        assert!(matches!(err, Error::ResourceExhausted(_)));
    }

    #[test]
    fn zero_sigma_rejected() {
        let fx = toy::fixture();
        let engine = Engine::new(1);
        let parts = fx.db.partition(1);
        assert!(matches!(
            naive_impl(&engine, &parts, &fx.fst, &fx.dict, NaiveConfig::naive(0)),
            Err(Error::Invalid(_))
        ));
    }
}
