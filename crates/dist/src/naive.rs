//! The NAÏVE and SEMI-NAÏVE baselines (Sec. III-C of the paper): ship the
//! candidate subsequences themselves.
//!
//! NAÏVE materializes the full `G_π(T)` per input sequence and sends every
//! candidate to the partition of its pivot item; SEMI-NAÏVE first drops
//! candidates containing infrequent items (`G^σ_π(T)`), which is valid by
//! support antimonotonicity. Reducers simply count. Both are exact but
//! explode on loose constraints — candidate generation is bounded by
//! [`NaiveConfig::budget`], the analog of the paper's executor memory limit.

use desq_bsp::Engine;
use desq_core::fst::candidates;
use desq_core::fx::FxHashMap;
use desq_core::{sequence, Dictionary, Fst, ItemId, Result, Sequence, EPSILON};

use crate::{from_bsp, to_bsp, MiningResult};

/// Configuration of the NAÏVE / SEMI-NAÏVE baselines.
#[derive(Debug, Clone, Copy)]
pub struct NaiveConfig {
    /// Minimum support threshold σ.
    pub sigma: u64,
    /// SEMI-NAÏVE's candidate filter: drop candidates containing infrequent
    /// items before the shuffle.
    pub filter: bool,
    /// Per-sequence candidate-generation budget; exceeding it aborts with
    /// [`desq_core::Error::ResourceExhausted`] (the paper's OOM analog).
    pub budget: usize,
}

impl NaiveConfig {
    /// The NAÏVE variant: unfiltered `G_π(T)`.
    pub fn naive(sigma: u64) -> NaiveConfig {
        NaiveConfig {
            sigma,
            filter: false,
            budget: usize::MAX,
        }
    }

    /// The SEMI-NAÏVE variant: frequency-filtered `G^σ_π(T)`.
    pub fn semi_naive(sigma: u64) -> NaiveConfig {
        NaiveConfig {
            sigma,
            filter: true,
            budget: usize::MAX,
        }
    }

    /// Overrides the candidate-generation budget.
    pub fn with_budget(mut self, budget: usize) -> NaiveConfig {
        self.budget = budget;
        self
    }
}

/// The workhorse behind [`naive`], [`semi_naive`] and [`crate::algo::Naive`].
pub(crate) fn naive_impl(
    engine: &Engine,
    parts: &[&[Sequence]],
    fst: &Fst,
    dict: &Dictionary,
    config: NaiveConfig,
) -> Result<MiningResult> {
    desq_core::mining::validate_sigma(config.sigma)?;
    let t0 = std::time::Instant::now();
    let sigma_filter = config.filter.then_some(config.sigma);

    let map = |part: &[Sequence], emit: &mut dyn FnMut(ItemId, Sequence)| {
        for seq in part {
            let cands = candidates::generate(fst, dict, seq, sigma_filter, config.budget)
                .map_err(to_bsp)?;
            for c in cands {
                let p = sequence::pivot(&c);
                if p != EPSILON {
                    emit(p, c);
                }
            }
        }
        Ok(())
    };
    let reduce = |_p: &ItemId, cands: Vec<Sequence>, emit: &mut dyn FnMut((Sequence, u64))| {
        let mut counts: FxHashMap<Sequence, u64> = FxHashMap::default();
        for c in cands {
            *counts.entry(c).or_insert(0) += 1;
        }
        for (c, freq) in counts {
            if freq >= config.sigma {
                emit((c, freq));
            }
        }
        Ok(())
    };

    let (patterns, job) = engine.map_reduce(parts, map, reduce).map_err(from_bsp)?;
    let patterns = desq_miner::sort_patterns(patterns);
    let metrics = crate::metrics_from_job(
        job,
        t0.elapsed().as_nanos() as u64,
        engine.workers(),
        crate::input_len(parts),
    );
    Ok(MiningResult { patterns, metrics })
}

/// Runs the NAÏVE or SEMI-NAÏVE baseline (selected by [`NaiveConfig`]).
#[deprecated(
    since = "0.1.0",
    note = "use desq::session::MiningSession with AlgorithmSpec::Naive or \
            AlgorithmSpec::SemiNaive (or desq_dist::algo::Naive via the \
            Miner trait)"
)]
pub fn naive(
    engine: &Engine,
    parts: &[&[Sequence]],
    fst: &Fst,
    dict: &Dictionary,
    config: NaiveConfig,
) -> Result<MiningResult> {
    naive_impl(engine, parts, fst, dict, config)
}

/// Convenience wrapper for the SEMI-NAÏVE variant.
#[deprecated(
    since = "0.1.0",
    note = "use desq::session::MiningSession with AlgorithmSpec::SemiNaive \
            (or desq_dist::algo::Naive via the Miner trait)"
)]
pub fn semi_naive(
    engine: &Engine,
    parts: &[&[Sequence]],
    fst: &Fst,
    dict: &Dictionary,
    sigma: u64,
) -> Result<MiningResult> {
    naive_impl(engine, parts, fst, dict, NaiveConfig::semi_naive(sigma))
}

#[cfg(test)]
mod tests {
    use super::*;
    use desq_core::mining::{Miner, MiningContext};
    use desq_core::{toy, Error};

    #[test]
    fn both_variants_match_reference_on_toy() {
        let fx = toy::fixture();
        let engine = Engine::new(2);
        let parts = fx.db.partition(2);
        for sigma in 1..=4 {
            let reference = desq_miner::algo::DesqCount
                .mine(&MiningContext::sequential(&fx.db, &fx.dict, sigma).with_fst(&fx.fst))
                .unwrap()
                .patterns;
            let nv = naive_impl(
                &engine,
                &parts,
                &fx.fst,
                &fx.dict,
                NaiveConfig::naive(sigma),
            )
            .unwrap();
            assert_eq!(nv.patterns, reference, "NAIVE σ={sigma}");
            let sn = naive_impl(
                &engine,
                &parts,
                &fx.fst,
                &fx.dict,
                NaiveConfig::semi_naive(sigma),
            )
            .unwrap();
            assert_eq!(sn.patterns, reference, "SEMI-NAIVE σ={sigma}");
        }
    }

    #[test]
    fn filter_shrinks_shuffle() {
        let fx = toy::fixture();
        let engine = Engine::new(2);
        let parts = fx.db.partition(2);
        let nv = naive_impl(&engine, &parts, &fx.fst, &fx.dict, NaiveConfig::naive(2)).unwrap();
        let sn = naive_impl(
            &engine,
            &parts,
            &fx.fst,
            &fx.dict,
            NaiveConfig::semi_naive(2),
        )
        .unwrap();
        // T2's 11 raw candidates collapse to 3 filtered ones, etc.
        assert!(sn.metrics.shuffle_records < nv.metrics.shuffle_records);
        assert!(sn.metrics.shuffle_bytes < nv.metrics.shuffle_bytes);
    }

    #[test]
    fn budget_zero_errors_on_matching_input() {
        let fx = toy::fixture();
        let engine = Engine::new(1);
        let parts = fx.db.partition(1);
        let err = naive_impl(
            &engine,
            &parts,
            &fx.fst,
            &fx.dict,
            NaiveConfig::naive(2).with_budget(1),
        )
        .unwrap_err();
        assert!(matches!(err, Error::ResourceExhausted(_)));
    }

    #[test]
    fn zero_sigma_rejected() {
        let fx = toy::fixture();
        let engine = Engine::new(1);
        let parts = fx.db.partition(1);
        assert!(matches!(
            naive_impl(&engine, &parts, &fx.fst, &fx.dict, NaiveConfig::naive(0)),
            Err(Error::Invalid(_))
        ));
    }
}
