//! The NAÏVE and SEMI-NAÏVE baselines (Sec. III-C of the paper): ship the
//! candidate subsequences themselves.
//!
//! NAÏVE materializes the full `G_π(T)` per input sequence and sends every
//! candidate to the partition of its pivot item; SEMI-NAÏVE first drops
//! candidates containing infrequent items (`G^σ_π(T)`), which is valid by
//! support antimonotonicity. Reducers simply count. Both are exact but
//! explode on loose constraints — candidate generation is bounded by
//! [`NaiveConfig::budget`], the analog of the paper's executor memory limit.

use desq_bsp::Engine;
use desq_core::fst::candidates;
use desq_core::fx::FxHashMap;
use desq_core::{sequence, Dictionary, Error, Fst, ItemId, Result, Sequence, EPSILON};

use crate::{from_bsp, to_bsp, MiningResult};

/// Configuration of the NAÏVE / SEMI-NAÏVE baselines.
#[derive(Debug, Clone, Copy)]
pub struct NaiveConfig {
    /// Minimum support threshold σ.
    pub sigma: u64,
    /// SEMI-NAÏVE's candidate filter: drop candidates containing infrequent
    /// items before the shuffle.
    pub filter: bool,
    /// Per-sequence candidate-generation budget; exceeding it aborts with
    /// [`Error::ResourceExhausted`] (the paper's OOM analog).
    pub budget: usize,
}

impl NaiveConfig {
    /// The NAÏVE variant: unfiltered `G_π(T)`.
    pub fn naive(sigma: u64) -> NaiveConfig {
        NaiveConfig {
            sigma,
            filter: false,
            budget: usize::MAX,
        }
    }

    /// The SEMI-NAÏVE variant: frequency-filtered `G^σ_π(T)`.
    pub fn semi_naive(sigma: u64) -> NaiveConfig {
        NaiveConfig {
            sigma,
            filter: true,
            budget: usize::MAX,
        }
    }

    /// Overrides the candidate-generation budget.
    pub fn with_budget(mut self, budget: usize) -> NaiveConfig {
        self.budget = budget;
        self
    }
}

/// Runs the NAÏVE or SEMI-NAÏVE baseline (selected by [`NaiveConfig`]).
pub fn naive(
    engine: &Engine,
    parts: &[&[Sequence]],
    fst: &Fst,
    dict: &Dictionary,
    config: NaiveConfig,
) -> Result<MiningResult> {
    if config.sigma == 0 {
        return Err(Error::Invalid("sigma must be positive".into()));
    }
    let sigma_filter = config.filter.then_some(config.sigma);

    let map = |seq: &Sequence, emit: &mut dyn FnMut(ItemId, Sequence)| {
        let cands =
            candidates::generate(fst, dict, seq, sigma_filter, config.budget).map_err(to_bsp)?;
        for c in cands {
            let p = sequence::pivot(&c);
            if p != EPSILON {
                emit(p, c);
            }
        }
        Ok(())
    };
    let reduce = |_p: &ItemId, cands: Vec<Sequence>, emit: &mut dyn FnMut((Sequence, u64))| {
        let mut counts: FxHashMap<Sequence, u64> = FxHashMap::default();
        for c in cands {
            *counts.entry(c).or_insert(0) += 1;
        }
        for (c, freq) in counts {
            if freq >= config.sigma {
                emit((c, freq));
            }
        }
        Ok(())
    };

    let (mut patterns, metrics) = engine.map_reduce(parts, map, reduce).map_err(from_bsp)?;
    patterns.sort();
    Ok(MiningResult { patterns, metrics })
}

/// Convenience wrapper for the SEMI-NAÏVE variant.
pub fn semi_naive(
    engine: &Engine,
    parts: &[&[Sequence]],
    fst: &Fst,
    dict: &Dictionary,
    sigma: u64,
) -> Result<MiningResult> {
    naive(engine, parts, fst, dict, NaiveConfig::semi_naive(sigma))
}

#[cfg(test)]
mod tests {
    use super::*;
    use desq_core::toy;
    use desq_miner::desq_count;

    #[test]
    fn both_variants_match_reference_on_toy() {
        let fx = toy::fixture();
        let engine = Engine::new(2);
        let parts = fx.db.partition(2);
        for sigma in 1..=4 {
            let reference = desq_count(&fx.db, &fx.fst, &fx.dict, sigma, usize::MAX).unwrap();
            let nv = naive(
                &engine,
                &parts,
                &fx.fst,
                &fx.dict,
                NaiveConfig::naive(sigma),
            )
            .unwrap();
            assert_eq!(nv.patterns, reference, "NAIVE σ={sigma}");
            let sn = semi_naive(&engine, &parts, &fx.fst, &fx.dict, sigma).unwrap();
            assert_eq!(sn.patterns, reference, "SEMI-NAIVE σ={sigma}");
        }
    }

    #[test]
    fn filter_shrinks_shuffle() {
        let fx = toy::fixture();
        let engine = Engine::new(2);
        let parts = fx.db.partition(2);
        let nv = naive(&engine, &parts, &fx.fst, &fx.dict, NaiveConfig::naive(2)).unwrap();
        let sn = naive(
            &engine,
            &parts,
            &fx.fst,
            &fx.dict,
            NaiveConfig::semi_naive(2),
        )
        .unwrap();
        // T2's 11 raw candidates collapse to 3 filtered ones, etc.
        assert!(sn.metrics.shuffle_records < nv.metrics.shuffle_records);
        assert!(sn.metrics.shuffle_bytes < nv.metrics.shuffle_bytes);
    }

    #[test]
    fn budget_zero_errors_on_matching_input() {
        let fx = toy::fixture();
        let engine = Engine::new(1);
        let parts = fx.db.partition(1);
        let err = naive(
            &engine,
            &parts,
            &fx.fst,
            &fx.dict,
            NaiveConfig::naive(2).with_budget(1),
        )
        .unwrap_err();
        assert!(matches!(err, Error::ResourceExhausted(_)));
    }

    #[test]
    fn zero_sigma_rejected() {
        let fx = toy::fixture();
        let engine = Engine::new(1);
        let parts = fx.db.partition(1);
        assert!(matches!(
            naive(&engine, &parts, &fx.fst, &fx.dict, NaiveConfig::naive(0)),
            Err(Error::Invalid(_))
        ));
    }
}
