//! [`Miner`]-trait adapters for the distributed algorithms.
//!
//! Each adapter wraps the algorithm's configuration struct; the threshold
//! σ and the work budget always come from the [`MiningContext`] (the
//! config's own `sigma` and budget fields are overridden — one validation
//! path for all algorithms). The BSP [`Engine`] is created from the
//! context's `workers`, and the database is partitioned into
//! `ctx.partitions` map chunks.

use desq_bsp::Engine;
use desq_core::mining::{Miner, MiningContext, MiningResult};
use desq_core::Result;

use crate::dcand::d_cand_impl;
use crate::dseq::d_seq_impl;
use crate::naive::naive_impl;
use crate::{DCandConfig, DSeqConfig, NaiveConfig};

/// Builds the BSP engine from the context's parallelism, forwarding the
/// context's cancellation token (when one is set) so deadlines, external
/// cancellation and panic containment apply to the distributed jobs too.
fn engine_for(ctx: &MiningContext<'_>) -> Engine {
    let engine = Engine::new(ctx.workers).with_reducers(ctx.reducers);
    match ctx.cancel {
        Some(token) => engine.with_cancel(token.clone()),
        None => engine,
    }
}

/// D-SEQ behind the unified API (Sec. V of the paper).
#[derive(Debug, Clone, Copy)]
pub struct DSeq(pub DSeqConfig);

impl Default for DSeq {
    fn default() -> DSeq {
        DSeq(DSeqConfig::new(1))
    }
}

impl Miner for DSeq {
    fn name(&self) -> &'static str {
        "D-SEQ"
    }

    fn mine(&self, ctx: &MiningContext<'_>) -> Result<MiningResult> {
        ctx.validate()?;
        let fst = ctx.fst()?;
        let mut cfg = self.0;
        cfg.sigma = ctx.sigma;
        cfg.run_budget = cfg.run_budget.min(ctx.limits.budget);
        let engine = engine_for(ctx);
        let parts = ctx.db.partition(ctx.partitions);
        d_seq_impl(&engine, &parts, fst, ctx.dict, cfg)
    }
}

/// D-CAND behind the unified API (Sec. VI of the paper).
#[derive(Debug, Clone, Copy)]
pub struct DCand(pub DCandConfig);

impl Default for DCand {
    fn default() -> DCand {
        DCand(DCandConfig::new(1))
    }
}

impl Miner for DCand {
    fn name(&self) -> &'static str {
        "D-CAND"
    }

    fn mine(&self, ctx: &MiningContext<'_>) -> Result<MiningResult> {
        ctx.validate()?;
        let fst = ctx.fst()?;
        let mut cfg = self.0;
        cfg.sigma = ctx.sigma;
        cfg.run_budget = cfg.run_budget.min(ctx.limits.budget);
        let engine = engine_for(ctx);
        let parts = ctx.db.partition(ctx.partitions);
        d_cand_impl(&engine, &parts, fst, ctx.dict, cfg)
    }
}

/// NAÏVE / SEMI-NAÏVE behind the unified API (selected by the config's
/// `filter` flag, Sec. III-C of the paper).
#[derive(Debug, Clone, Copy)]
pub struct Naive(pub NaiveConfig);

impl Naive {
    /// The unfiltered NAÏVE variant ("naive" is the paper's algorithm
    /// name, not a reference to the type).
    #[allow(clippy::self_named_constructors)]
    pub fn naive() -> Naive {
        Naive(NaiveConfig::naive(1))
    }

    /// The frequency-filtered SEMI-NAÏVE variant.
    pub fn semi_naive() -> Naive {
        Naive(NaiveConfig::semi_naive(1))
    }
}

impl Miner for Naive {
    fn name(&self) -> &'static str {
        if self.0.filter {
            "SEMI-NAIVE"
        } else {
            "NAIVE"
        }
    }

    fn mine(&self, ctx: &MiningContext<'_>) -> Result<MiningResult> {
        ctx.validate()?;
        let fst = ctx.fst()?;
        let mut cfg = self.0;
        cfg.sigma = ctx.sigma;
        cfg.budget = cfg.budget.min(ctx.limits.budget);
        let engine = engine_for(ctx);
        let parts = ctx.db.partition(ctx.partitions);
        naive_impl(&engine, &parts, fst, ctx.dict, cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desq_core::mining::Limits;
    use desq_core::{toy, Error};

    #[test]
    fn adapters_agree_and_report_distributed_metrics() {
        let fx = toy::fixture();
        let ctx = MiningContext::sequential(&fx.db, &fx.dict, 2)
            .with_fst(&fx.fst)
            .with_parallelism(2, 3);
        let ds = DSeq(DSeqConfig::new(1)).mine(&ctx).unwrap();
        let dc = DCand(DCandConfig::new(1)).mine(&ctx).unwrap();
        let nv = Naive::naive().mine(&ctx).unwrap();
        let sn = Naive::semi_naive().mine(&ctx).unwrap();
        assert_eq!(ds.patterns, dc.patterns);
        assert_eq!(ds.patterns, nv.patterns);
        assert_eq!(ds.patterns, sn.patterns);
        assert_eq!(ds.patterns.len(), 3, "σ is taken from the context");
        for res in [&ds, &dc, &nv, &sn] {
            assert!(res.is_sorted());
            assert_eq!(res.metrics.workers, 2);
            assert_eq!(res.metrics.input_sequences, 5);
            assert!(res.metrics.shuffle_bytes > 0);
            assert!(res.metrics.wall_nanos > 0);
        }
    }

    #[test]
    fn context_budget_caps_config_budget() {
        let fx = toy::fixture();
        let ctx = MiningContext::sequential(&fx.db, &fx.dict, 2)
            .with_fst(&fx.fst)
            .with_limits(Limits::default().with_budget(1));
        assert!(matches!(
            Naive::naive().mine(&ctx),
            Err(Error::ResourceExhausted(_))
        ));
        assert!(matches!(
            DCand::default().mine(&ctx),
            Err(Error::ResourceExhausted(_))
        ));
    }

    #[test]
    fn names_distinguish_variants() {
        assert_eq!(Naive::naive().name(), "NAIVE");
        assert_eq!(Naive::semi_naive().name(), "SEMI-NAIVE");
        assert_eq!(DSeq::default().name(), "D-SEQ");
        assert_eq!(DCand::default().name(), "D-CAND");
    }
}
