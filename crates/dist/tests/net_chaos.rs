//! Cross-process chaos suite for the networked shuffle.
//!
//! Only built with `--features failpoints`. The headline scenarios spawn
//! *real worker processes* (this test binary re-invoked with
//! `chaos_worker_main --exact` and a `DESQ_FAILPOINTS` environment spec)
//! and assert the coordinator's failure-domain promises: a worker killed
//! mid-superstep or a flaky link is ridden out by per-partition task
//! re-execution, the final result stays byte-identical to the in-process
//! oracle, and the retry counters surface in [`desq_core::MiningMetrics`].
#![cfg(feature = "failpoints")]

use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::sync::Mutex;
use std::thread;
use std::time::Duration;

use desq_bsp::{Engine, NetConfig, NetCoordinator};
use desq_core::fault::{self, FailAction, FailSpec};
use desq_core::mining::{Miner, MiningContext};
use desq_core::{toy, Sequence};
use desq_dist::dseq::{d_seq_via, d_seq_worker, DSeqConfig};

const SIGMA: u64 = 2;
const PARTS: usize = 8;

/// The failpoint registry is process-global; tests that arm coordinator-
/// side sites take this lock so their configurations never overlap.
static CHAOS: Mutex<()> = Mutex::new(());

fn chaos_guard() -> std::sync::MutexGuard<'static, ()> {
    let guard = CHAOS.lock().unwrap_or_else(|p| p.into_inner());
    fault::clear_all();
    guard
}

fn oracle(fx: &toy::Toy, sigma: u64) -> Vec<(Sequence, u64)> {
    desq_miner::algo::DesqDfs
        .mine(&MiningContext::sequential(&fx.db, &fx.dict, sigma).with_fst(&fx.fst))
        .unwrap()
        .patterns
}

/// Long heartbeat so a fast toy job never interleaves heartbeats with
/// task frames — the `net::send_frame` hit counters in the worker specs
/// stay deterministic: #1 Hello, #2 first map output, #3 second, …
fn chaos_net() -> NetConfig {
    NetConfig {
        heartbeat: Duration::from_secs(2),
        liveness: Duration::from_secs(8),
        ..NetConfig::default()
    }
}

/// Re-invokes this test binary as a worker process serving the toy D-SEQ
/// job, with an optional fault spec armed in the child's environment.
fn spawn_worker_process(addr: SocketAddr, failpoints: Option<&str>) -> Child {
    let mut cmd = Command::new(std::env::current_exe().unwrap());
    cmd.args(["chaos_worker_main", "--exact", "--nocapture"])
        .env("DESQ_NET_CHAOS_ADDR", addr.to_string())
        .env_remove("DESQ_FAILPOINTS")
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    if let Some(spec) = failpoints {
        cmd.env("DESQ_FAILPOINTS", spec);
    }
    cmd.spawn().expect("spawn worker process")
}

/// The worker-process entry point: a no-op under a normal test run, a
/// full D-SEQ worker when re-invoked by the scenarios below.
#[test]
fn chaos_worker_main() {
    let Ok(addr) = std::env::var("DESQ_NET_CHAOS_ADDR") else {
        return;
    };
    fault::init_from_env().expect("valid DESQ_FAILPOINTS spec");
    let addr: SocketAddr = addr.parse().unwrap();
    let fx = toy::fixture();
    let parts = fx.db.partition(PARTS);
    let engine = Engine::new(2);
    // Errors are expected here: injected link faults beyond the retry
    // budget surface as PeerUnreachable, and an Exit action never returns.
    let _ = d_seq_worker(
        &engine,
        addr,
        &chaos_net(),
        &parts,
        &fx.fst,
        &fx.dict,
        DSeqConfig::new(SIGMA),
    );
}

/// Runs the toy D-SEQ job over real worker processes and returns the
/// mining result; children are spawned in order with a head start for the
/// first, so the first spec deterministically receives the first tasks.
fn run_with_workers(specs: &[Option<&str>]) -> (desq_core::MiningResult, Vec<Child>) {
    let cfg = chaos_net();
    let coord = NetCoordinator::bind("127.0.0.1:0", cfg).unwrap();
    let addr = coord.local_addr().unwrap();
    let mut children = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        children.push(spawn_worker_process(addr, *spec));
        if i + 1 < specs.len() {
            thread::sleep(Duration::from_millis(300));
        }
    }
    let fx = toy::fixture();
    let engine = Engine::new(2);
    let parts = fx.db.partition(PARTS);
    let res = d_seq_via(
        &engine,
        &coord,
        &parts,
        &fx.fst,
        &fx.dict,
        DSeqConfig::new(SIGMA),
    )
    .expect("job must ride out the injected fault");
    (res, children)
}

#[test]
fn killed_worker_is_ridden_out_with_identical_result() {
    // The first worker dies with exit(17) while sending its second map
    // output: Hello (#1) and one MapOut (#2) pass, send #3 kills the
    // process mid-superstep with a task in flight.
    let (res, mut children) = run_with_workers(&[Some("net::send_frame=skip(2).exit(17)"), None]);
    let fx = toy::fixture();
    assert_eq!(res.patterns, oracle(&fx, SIGMA));
    assert!(
        res.metrics.retried_tasks >= 1,
        "death with a task in flight must re-execute it: {:?}",
        res.metrics
    );
    let killed = children.remove(0).wait().unwrap();
    assert_eq!(killed.code(), Some(17), "worker must die by the failpoint");
    assert!(children.remove(0).wait().unwrap().success());
}

#[test]
fn flaky_link_is_ridden_out_with_identical_result() {
    // The first worker's third send fails once (a transient link error);
    // the worker reconnects within its retry budget and the coordinator
    // re-executes whatever was in flight.
    let (res, mut children) =
        run_with_workers(&[Some("net::send_frame=skip(2).times(1).err"), None]);
    let fx = toy::fixture();
    assert_eq!(res.patterns, oracle(&fx, SIGMA));
    assert!(
        res.metrics.retried_tasks >= 1,
        "link failure with a task in flight must re-execute it: {:?}",
        res.metrics
    );
    for c in &mut children {
        assert!(c.wait().unwrap().success());
    }
}

#[test]
fn dropped_accept_is_ridden_out_by_reconnect() {
    let _guard = chaos_guard();
    // The coordinator drops the first connection it accepts; the worker's
    // reconnect schedule rides it out.
    fault::configure("net::accept", FailSpec::once_after(0, FailAction::Err));
    let cfg = chaos_net();
    let coord = NetCoordinator::bind("127.0.0.1:0", cfg.clone()).unwrap();
    let addr = coord.local_addr().unwrap();
    let worker = thread::spawn(move || {
        let fx = toy::fixture();
        let parts = fx.db.partition(PARTS);
        let engine = Engine::new(2);
        d_seq_worker(
            &engine,
            addr,
            &cfg,
            &parts,
            &fx.fst,
            &fx.dict,
            DSeqConfig::new(SIGMA),
        )
        .expect("worker rides out the dropped connection");
    });
    let fx = toy::fixture();
    let engine = Engine::new(2);
    let parts = fx.db.partition(PARTS);
    let res = d_seq_via(
        &engine,
        &coord,
        &parts,
        &fx.fst,
        &fx.dict,
        DSeqConfig::new(SIGMA),
    )
    .unwrap();
    assert_eq!(res.patterns, oracle(&fx, SIGMA));
    assert!(fault::hits("net::accept") >= 1, "drop must have fired");
    worker.join().unwrap();
    fault::clear_all();
}

#[test]
fn suppressed_heartbeat_stays_inside_liveness_window() {
    let _guard = chaos_guard();
    // Losing a single heartbeat must not trip the liveness window (the
    // default keeps 4× headroom): the job completes without a timeout.
    fault::configure("net::heartbeat", FailSpec::once_after(0, FailAction::Err));
    let cfg = NetConfig {
        heartbeat: Duration::from_millis(100),
        liveness: Duration::from_millis(800),
        ..NetConfig::default()
    };
    let coord = NetCoordinator::bind("127.0.0.1:0", cfg.clone()).unwrap();
    let addr = coord.local_addr().unwrap();
    let worker = {
        let cfg = cfg.clone();
        thread::spawn(move || {
            let fx = toy::fixture();
            let parts = fx.db.partition(PARTS);
            let engine = Engine::new(2);
            d_seq_worker(
                &engine,
                addr,
                &cfg,
                &parts,
                &fx.fst,
                &fx.dict,
                DSeqConfig::new(SIGMA),
            )
            .expect("one lost heartbeat must not kill the worker");
        })
    };
    let fx = toy::fixture();
    let engine = Engine::new(2);
    let parts = fx.db.partition(PARTS);
    let res = d_seq_via(
        &engine,
        &coord,
        &parts,
        &fx.fst,
        &fx.dict,
        DSeqConfig::new(SIGMA),
    )
    .unwrap();
    assert_eq!(res.patterns, oracle(&fx, SIGMA));
    assert_eq!(res.metrics.peer_timeouts, 0, "{:?}", res.metrics);
    worker.join().unwrap();
    fault::clear_all();
}
