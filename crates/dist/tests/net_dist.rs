//! Integration tests of the networked shuffle: D-SEQ / NAÏVE / D-CAND
//! running as coordinator + worker threads over localhost TCP, compared
//! byte-for-byte against the in-process oracle, plus the typed failure
//! paths (no worker, dead coordinator, stalled peer).

use std::net::{TcpListener, TcpStream};
use std::thread;
use std::time::Duration;

use desq_bsp::transport::{write_net_frame, Frame, NET_PROTOCOL_VERSION};
use desq_bsp::{Engine, InProcess, NetConfig, NetCoordinator};
use desq_core::mining::{Miner, MiningContext};
use desq_core::retry::RetryPolicy;
use desq_core::{toy, Error, Sequence};
use desq_dist::dcand::{d_cand_via, DCandConfig};
use desq_dist::dseq::{d_seq_via, d_seq_worker, DSeqConfig};
use desq_dist::naive::{naive_via, naive_worker, NaiveConfig};

const SIGMA: u64 = 2;
const PARTS: usize = 8;

/// Reference result through the sequential DESQ-DFS miner.
fn oracle(fx: &toy::Toy, sigma: u64) -> Vec<(Sequence, u64)> {
    desq_miner::algo::DesqDfs
        .mine(&MiningContext::sequential(&fx.db, &fx.dict, sigma).with_fst(&fx.fst))
        .unwrap()
        .patterns
}

/// Short timeouts so the failure tests finish in milliseconds, generous
/// enough that a loaded CI machine never trips them spuriously.
fn fast_net() -> NetConfig {
    NetConfig {
        liveness: Duration::from_millis(1500),
        heartbeat: Duration::from_millis(200),
        ..NetConfig::default()
    }
}

/// Spawns a worker thread serving D-SEQ tasks against its own copy of the
/// toy corpus (as a real worker process would build from shared input).
fn spawn_dseq_worker(addr: std::net::SocketAddr, cfg: NetConfig) -> thread::JoinHandle<()> {
    thread::spawn(move || {
        let fx = toy::fixture();
        let parts = fx.db.partition(PARTS);
        let engine = Engine::new(2);
        d_seq_worker(
            &engine,
            addr,
            &cfg,
            &parts,
            &fx.fst,
            &fx.dict,
            DSeqConfig::new(SIGMA),
        )
        .expect("worker run");
    })
}

#[test]
fn in_process_transport_matches_local_oracle() {
    let fx = toy::fixture();
    let engine = Engine::new(2);
    let parts = fx.db.partition(PARTS);
    let res = d_seq_via(
        &engine,
        &InProcess,
        &parts,
        &fx.fst,
        &fx.dict,
        DSeqConfig::new(SIGMA),
    )
    .unwrap();
    assert_eq!(res.patterns, oracle(&fx, SIGMA));
    assert_eq!(res.metrics.retried_tasks, 0);
    assert_eq!(res.metrics.peer_timeouts, 0);
}

#[test]
fn net_dseq_two_workers_matches_oracle() {
    let cfg = fast_net();
    let coord = NetCoordinator::bind("127.0.0.1:0", cfg.clone()).unwrap();
    let addr = coord.local_addr().unwrap();
    let workers: Vec<_> = (0..2)
        .map(|_| spawn_dseq_worker(addr, cfg.clone()))
        .collect();

    let fx = toy::fixture();
    let engine = Engine::new(2);
    let parts = fx.db.partition(PARTS);
    let res = d_seq_via(
        &engine,
        &coord,
        &parts,
        &fx.fst,
        &fx.dict,
        DSeqConfig::new(SIGMA),
    )
    .unwrap();
    assert_eq!(res.patterns, oracle(&fx, SIGMA));
    assert!(res.metrics.max_task_nanos > 0, "task timing recorded");
    for w in workers {
        w.join().unwrap();
    }
}

#[test]
fn net_naive_matches_oracle() {
    let cfg = fast_net();
    let coord = NetCoordinator::bind("127.0.0.1:0", cfg.clone()).unwrap();
    let addr = coord.local_addr().unwrap();
    let worker = {
        let cfg = cfg.clone();
        thread::spawn(move || {
            let fx = toy::fixture();
            let parts = fx.db.partition(PARTS);
            let engine = Engine::new(2);
            naive_worker(
                &engine,
                addr,
                &cfg,
                &parts,
                &fx.fst,
                &fx.dict,
                NaiveConfig::semi_naive(SIGMA),
            )
            .expect("worker run");
        })
    };

    let fx = toy::fixture();
    let engine = Engine::new(2);
    let parts = fx.db.partition(PARTS);
    let res = naive_via(
        &engine,
        &coord,
        &parts,
        &fx.fst,
        &fx.dict,
        NaiveConfig::semi_naive(SIGMA),
    )
    .unwrap();
    let reference = desq_miner::algo::DesqCount
        .mine(&MiningContext::sequential(&fx.db, &fx.dict, SIGMA).with_fst(&fx.fst))
        .unwrap()
        .patterns;
    assert_eq!(res.patterns, reference);
    worker.join().unwrap();
}

#[test]
fn net_dcand_matches_oracle_and_rejects_no_agg() {
    let cfg = fast_net();
    let coord = NetCoordinator::bind("127.0.0.1:0", cfg.clone()).unwrap();
    let addr = coord.local_addr().unwrap();

    // The no-agg ablation uses the owned-value map/reduce shape, which the
    // byte-oriented transport does not carry: typed rejection, no hang.
    let no_agg = DCandConfig {
        aggregate: false,
        ..DCandConfig::new(SIGMA)
    };
    let fx = toy::fixture();
    let engine = Engine::new(2);
    let parts = fx.db.partition(PARTS);
    assert!(matches!(
        d_cand_via(&engine, &coord, &parts, &fx.fst, &fx.dict, no_agg),
        Err(Error::Invalid(_))
    ));

    let worker = {
        let cfg = cfg.clone();
        thread::spawn(move || {
            let fx = toy::fixture();
            let parts = fx.db.partition(PARTS);
            let engine = Engine::new(2);
            desq_dist::dcand::d_cand_worker(
                &engine,
                addr,
                &cfg,
                &parts,
                &fx.fst,
                &fx.dict,
                DCandConfig::new(SIGMA),
            )
            .expect("worker run");
        })
    };
    let res = d_cand_via(
        &engine,
        &coord,
        &parts,
        &fx.fst,
        &fx.dict,
        DCandConfig::new(SIGMA),
    )
    .unwrap();
    let reference = desq_miner::algo::DesqCount
        .mine(&MiningContext::sequential(&fx.db, &fx.dict, SIGMA).with_fst(&fx.fst))
        .unwrap()
        .patterns;
    assert_eq!(res.patterns, reference);
    worker.join().unwrap();
}

#[test]
fn no_worker_within_peer_wait_is_peer_unreachable() {
    let cfg = NetConfig {
        peer_wait: Duration::from_millis(300),
        ..fast_net()
    };
    let coord = NetCoordinator::bind("127.0.0.1:0", cfg).unwrap();
    let fx = toy::fixture();
    let engine = Engine::new(2);
    let parts = fx.db.partition(PARTS);
    let err = d_seq_via(
        &engine,
        &coord,
        &parts,
        &fx.fst,
        &fx.dict,
        DSeqConfig::new(SIGMA),
    )
    .unwrap_err();
    assert!(matches!(err, Error::PeerUnreachable(_)), "got {err:?}");
}

#[test]
fn worker_against_dead_coordinator_is_peer_unreachable() {
    // Bind-and-drop reserves a port with nothing listening on it.
    let addr = {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap()
    };
    let cfg = NetConfig {
        retry: RetryPolicy {
            max_retries: 2,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(20),
            ..RetryPolicy::default()
        },
        ..fast_net()
    };
    let fx = toy::fixture();
    let engine = Engine::new(2);
    let parts = fx.db.partition(PARTS);
    let err = d_seq_worker(
        &engine,
        addr,
        &cfg,
        &parts,
        &fx.fst,
        &fx.dict,
        DSeqConfig::new(SIGMA),
    )
    .unwrap_err();
    assert!(matches!(err, Error::PeerUnreachable(_)), "got {err:?}");
}

#[test]
fn stalled_peer_trips_liveness_and_job_completes() {
    // Tight liveness so the stalled peer is declared dead quickly; the
    // healthy worker heartbeats well inside the window.
    let cfg = NetConfig {
        liveness: Duration::from_millis(600),
        heartbeat: Duration::from_millis(100),
        ..NetConfig::default()
    };
    let coord = NetCoordinator::bind("127.0.0.1:0", cfg.clone()).unwrap();
    let addr = coord.local_addr().unwrap();

    // A peer that completes the handshake and then goes silent — the
    // classic straggler/hung-process failure, not a clean disconnect.
    let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
    let max_frame = cfg.max_frame;
    let stalled = thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).unwrap();
        write_net_frame(
            &mut stream,
            &Frame::Hello {
                version: NET_PROTOCOL_VERSION,
                fingerprint: 0,
            },
            max_frame,
        )
        .unwrap();
        // Hold the connection open, silently, until the test is done.
        let _ = release_rx.recv_timeout(Duration::from_secs(30));
    });
    // Let the stalled peer win the handshake race so it gets assignments.
    thread::sleep(Duration::from_millis(100));
    let worker = spawn_dseq_worker(addr, cfg.clone());

    let fx = toy::fixture();
    let engine = Engine::new(2);
    let parts = fx.db.partition(PARTS);
    let res = d_seq_via(
        &engine,
        &coord,
        &parts,
        &fx.fst,
        &fx.dict,
        DSeqConfig::new(SIGMA),
    )
    .unwrap();
    assert_eq!(res.patterns, oracle(&fx, SIGMA));
    assert!(
        res.metrics.peer_timeouts >= 1,
        "stalled peer not detected: {:?}",
        res.metrics
    );
    let _ = release_tx.send(());
    stalled.join().unwrap();
    worker.join().unwrap();
}
