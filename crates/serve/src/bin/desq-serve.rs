//! The `desq-serve` command: run the daemon or query one.
//!
//! ```text
//! desq-serve serve [--listen ADDR] --corpus NAME=SPEC ...
//!                  [--max-inflight N] [--max-budget N] [--max-patterns N]
//!                  [--read-timeout-ms N] [--max-deadline-ms N]
//! desq-serve query [--addr ADDR] --corpus NAME --pexp EXPR --sigma N
//!                  [--anchored] [--algo desq-dfs|desq-count|d-seq|d-cand]
//!                  [--budget N] [--max-patterns N] [--workers N]
//!                  [--deadline-ms N] [--retries N]
//! ```
//!
//! Corpus specs are the `CorpusStore::load_spec` forms (`toy`,
//! `nyt:<sentences>[:seed]`, `amzn:<customers>`, `cw:<sentences>`).
//! `query` prints one pattern per line as frequency-encoded item ids plus
//! the frequency (the dictionary lives server-side), then a summary line
//! with wall time, cache outcome and queue wait.
//!
//! Robustness knobs: `--read-timeout-ms` evicts clients that stall before
//! sending a complete request (0 disables), `--max-deadline-ms` caps every
//! query's wall-clock deadline server-side, `--deadline-ms` asks the
//! server to abort this query with `DeadlineExceeded` past the given
//! wall-clock budget, and `--retries` retries `Busy`/connection-refused
//! answers with jittered exponential backoff.

use std::net::ToSocketAddrs;
use std::process::ExitCode;
use std::time::Duration;

use desq_serve::client::{Client, RetryPolicy};
use desq_serve::proto::{Request, WireAlgo};
use desq_serve::server::{ServeLimits, Server};
use desq_serve::store::CorpusStore;

const DEFAULT_ADDR: &str = "127.0.0.1:4711";

/// A deferred flag application: flags are parsed before the base request
/// exists, so each one is captured as an edit replayed once it does.
type ReqMod = Box<dyn FnOnce(Request) -> Result<Request, String>>;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  desq-serve serve [--listen ADDR] --corpus NAME=SPEC ... \
         [--max-inflight N] [--max-budget N] [--max-patterns N] \
         [--read-timeout-ms N] [--max-deadline-ms N]\n  \
         desq-serve query [--addr ADDR] --corpus NAME --pexp EXPR --sigma N \
         [--anchored] [--algo A] [--budget N] [--max-patterns N] [--workers N] \
         [--deadline-ms N] [--retries N]"
    );
    ExitCode::FAILURE
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("desq-serve: {msg}");
    ExitCode::FAILURE
}

fn serve(args: &[String]) -> ExitCode {
    let mut listen = DEFAULT_ADDR.to_string();
    let mut limits = ServeLimits::default();
    let mut store = CorpusStore::new();
    let mut corpora = 0usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{what} needs a value"))
        };
        let result: Result<(), String> = (|| {
            match arg.as_str() {
                "--listen" => listen = value("--listen")?,
                "--corpus" => {
                    let spec = value("--corpus")?;
                    let (name, spec) = spec
                        .split_once('=')
                        .ok_or_else(|| format!("--corpus {spec:?}: expected NAME=SPEC"))?;
                    store
                        .load_spec(name, spec)
                        .map_err(|e| format!("loading corpus {name:?}: {e}"))?;
                    corpora += 1;
                    eprintln!("loaded corpus {name} ({spec})");
                }
                "--max-inflight" => {
                    limits.max_inflight = value("--max-inflight")?
                        .parse()
                        .map_err(|_| "--max-inflight: not a number".to_string())?;
                }
                "--max-budget" => {
                    limits.max_budget = value("--max-budget")?
                        .parse()
                        .map_err(|_| "--max-budget: not a number".to_string())?;
                }
                "--max-patterns" => {
                    limits.max_patterns = value("--max-patterns")?
                        .parse()
                        .map_err(|_| "--max-patterns: not a number".to_string())?;
                }
                "--read-timeout-ms" => {
                    let ms: u64 = value("--read-timeout-ms")?
                        .parse()
                        .map_err(|_| "--read-timeout-ms: not a number".to_string())?;
                    limits.read_timeout = (ms > 0).then(|| Duration::from_millis(ms));
                }
                "--max-deadline-ms" => {
                    let ms: u64 = value("--max-deadline-ms")?
                        .parse()
                        .map_err(|_| "--max-deadline-ms: not a number".to_string())?;
                    limits.max_deadline = (ms > 0).then(|| Duration::from_millis(ms));
                }
                other => return Err(format!("unknown flag {other:?}")),
            }
            Ok(())
        })();
        if let Err(msg) = result {
            return fail(&msg);
        }
    }
    if corpora == 0 {
        return fail("serve needs at least one --corpus NAME=SPEC");
    }
    match Server::new(store).with_limits(limits).spawn(&listen) {
        Ok(handle) => {
            println!("desq-serve listening on {}", handle.addr());
            handle.wait();
            ExitCode::SUCCESS
        }
        Err(e) => fail(&format!("binding {listen}: {e}")),
    }
}

fn query(args: &[String]) -> ExitCode {
    let mut addr = DEFAULT_ADDR.to_string();
    let mut corpus = None;
    let mut pexp = None;
    let mut sigma = None;
    let mut req_mods: Vec<ReqMod> = Vec::new();
    let mut anchored = false;
    let mut retries = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{what} needs a value"))
        };
        let result: Result<(), String> = (|| {
            match arg.as_str() {
                "--addr" => addr = value("--addr")?,
                "--corpus" => corpus = Some(value("--corpus")?),
                "--pexp" => pexp = Some(value("--pexp")?),
                "--sigma" => {
                    sigma = Some(
                        value("--sigma")?
                            .parse::<u64>()
                            .map_err(|_| "--sigma: not a number".to_string())?,
                    )
                }
                "--anchored" => anchored = true,
                "--algo" => {
                    let algo = WireAlgo::parse(&value("--algo")?).map_err(|e| e.to_string())?;
                    req_mods.push(Box::new(move |r: Request| Ok(r.with_algo(algo))));
                }
                "--budget" => {
                    let v: u64 = value("--budget")?
                        .parse()
                        .map_err(|_| "--budget: not a number".to_string())?;
                    req_mods.push(Box::new(move |r: Request| Ok(r.with_budget(v))));
                }
                "--max-patterns" => {
                    let v: u64 = value("--max-patterns")?
                        .parse()
                        .map_err(|_| "--max-patterns: not a number".to_string())?;
                    req_mods.push(Box::new(move |mut r: Request| {
                        r.max_patterns = v;
                        Ok(r)
                    }));
                }
                "--workers" => {
                    let v: u64 = value("--workers")?
                        .parse()
                        .map_err(|_| "--workers: not a number".to_string())?;
                    req_mods.push(Box::new(move |r: Request| Ok(r.with_workers(v))));
                }
                "--deadline-ms" => {
                    let v: u64 = value("--deadline-ms")?
                        .parse()
                        .map_err(|_| "--deadline-ms: not a number".to_string())?;
                    req_mods.push(Box::new(move |r: Request| Ok(r.with_deadline_millis(v))));
                }
                "--retries" => {
                    retries = Some(
                        value("--retries")?
                            .parse::<u32>()
                            .map_err(|_| "--retries: not a number".to_string())?,
                    );
                }
                other => return Err(format!("unknown flag {other:?}")),
            }
            Ok(())
        })();
        if let Err(msg) = result {
            return fail(&msg);
        }
    }
    let (Some(corpus), Some(pexp), Some(sigma)) = (corpus, pexp, sigma) else {
        return fail("query needs --corpus, --pexp and --sigma");
    };
    let mut req = Request::new(corpus, pexp, sigma);
    if !anchored {
        req = req.unanchored();
    }
    for m in req_mods {
        req = match m(req) {
            Ok(r) => r,
            Err(msg) => return fail(&msg),
        };
    }
    let sock_addr = match addr.to_socket_addrs().ok().and_then(|mut a| a.next()) {
        Some(a) => a,
        None => return fail(&format!("cannot resolve {addr:?}")),
    };
    let mut client = Client::new(sock_addr);
    if let Some(max_retries) = retries {
        client = client.with_retry(RetryPolicy {
            max_retries,
            ..RetryPolicy::default()
        });
    }
    match client.query(&req) {
        Ok(out) => {
            for (pattern, freq) in &out.patterns {
                let items: Vec<String> = pattern.iter().map(u32::to_string).collect();
                println!("{}\t{freq}", items.join(" "));
            }
            eprintln!(
                "{} patterns in {:.3}s ({}, queue wait {:.3}ms, cache {}H/{}M)",
                out.patterns.len(),
                out.metrics.total_secs(),
                if out.stats.cache_hit {
                    "fst cache hit"
                } else {
                    "fst compiled"
                },
                out.stats.queue_wait_nanos as f64 / 1e6,
                out.stats.cache_hits,
                out.stats.cache_misses,
            );
            ExitCode::SUCCESS
        }
        Err(e) => fail(&e.to_string()),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => serve(&args[1..]),
        Some("query") => query(&args[1..]),
        _ => usage(),
    }
}
