//! Shared corpus state and the FST compile cache.
//!
//! A [`CorpusStore`] is built once at daemon startup and then only read:
//! every corpus lives behind `Arc`s that each concurrent query borrows, so
//! serving a query materializes *nothing* — the two expensive per-request
//! costs of a standalone `MiningSession` (corpus construction and
//! pexp → FST compilation) are paid at load time and on first use
//! respectively. Compiled FSTs are memoized in a cache keyed by the
//! *canonical* form of the pattern expression (its parsed
//! pretty-printing), so textual variants of the same constraint — extra
//! whitespace, redundant brackets — share one compiled automaton.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use desq::session::MiningSession;
use desq_core::{Dictionary, Error, Fst, PatEx, Result, SequenceDb};
use desq_datagen::{amzn_like, cw_like, nyt_like, AmznConfig, CwConfig, NytConfig};

/// One resident corpus: a frozen dictionary plus its recoded database,
/// both shared immutably across all queries.
pub struct Corpus {
    /// The name queries address it by.
    pub name: String,
    /// Frequency-encoded dictionary (hierarchy + f-list).
    pub dict: Arc<Dictionary>,
    /// The recoded input sequences.
    pub db: Arc<SequenceDb>,
}

/// Outcome of a compile-cache lookup.
pub struct CompiledFst {
    /// The compiled constraint, shared with every query using it.
    pub fst: Arc<Fst>,
    /// True iff the automaton came from the cache.
    pub cache_hit: bool,
    /// Nanoseconds spent compiling (0 on a hit).
    pub compile_nanos: u64,
}

/// Corpora loaded once into shared immutable state, plus the FST compile
/// cache with its global hit/miss counters.
#[derive(Default)]
pub struct CorpusStore {
    corpora: HashMap<String, Arc<Corpus>>,
    cache: Mutex<HashMap<(String, String, bool), Arc<Fst>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CorpusStore {
    /// An empty store.
    pub fn new() -> CorpusStore {
        CorpusStore::default()
    }

    /// Registers a corpus under `name` (replacing any previous one).
    pub fn insert(
        &mut self,
        name: impl Into<String>,
        dict: impl Into<Arc<Dictionary>>,
        db: impl Into<Arc<SequenceDb>>,
    ) {
        let name = name.into();
        self.corpora.insert(
            name.clone(),
            Arc::new(Corpus {
                name,
                dict: dict.into(),
                db: db.into(),
            }),
        );
    }

    /// Loads a corpus from a generator spec string:
    ///
    /// * `toy` — the paper's running example (Fig. 2);
    /// * `nyt:<sentences>[:seed]` — the NYT-like generator;
    /// * `amzn:<customers>` — the Amazon-like generator;
    /// * `cw:<sentences>` — the ClueWeb-like generator.
    ///
    /// This is the `desq-serve serve --corpus name=spec` surface; when the
    /// mmap'd on-disk corpus format lands it becomes one more spec form.
    pub fn load_spec(&mut self, name: &str, spec: &str) -> Result<()> {
        let mut parts = spec.split(':');
        let kind = parts.next().unwrap_or_default();
        let size = |p: Option<&str>| -> Result<usize> {
            p.ok_or_else(|| Error::Invalid(format!("corpus spec {spec:?}: missing size")))?
                .parse()
                .map_err(|_| Error::Invalid(format!("corpus spec {spec:?}: bad size")))
        };
        let (dict, db) = match kind {
            "toy" => {
                let fx = desq_core::toy::fixture();
                (fx.dict, fx.db)
            }
            "nyt" => {
                let mut cfg = NytConfig::new(size(parts.next())?);
                if let Some(seed) = parts.next() {
                    cfg =
                        cfg.with_seed(seed.parse().map_err(|_| {
                            Error::Invalid(format!("corpus spec {spec:?}: bad seed"))
                        })?);
                }
                nyt_like(&cfg)
            }
            "amzn" => amzn_like(&AmznConfig::new(size(parts.next())?)),
            "cw" => cw_like(&CwConfig::new(size(parts.next())?)),
            other => {
                return Err(Error::Invalid(format!(
                    "unknown corpus kind {other:?} (expected toy, nyt, amzn or cw)"
                )))
            }
        };
        self.insert(name, dict, db);
        Ok(())
    }

    /// Looks up a corpus by name.
    pub fn get(&self, name: &str) -> Option<&Arc<Corpus>> {
        self.corpora.get(name)
    }

    /// The names of all resident corpora, sorted (for error messages).
    pub fn names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.corpora.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// Resolves the compiled FST for `(corpus, pexp, unanchored)` through
    /// the cache.
    ///
    /// The cache key is the *canonical* pattern expression — the
    /// pretty-printing of the parsed [`PatEx`] — so `"(A) (b)"` and
    /// `"(A)(b)"` hit the same entry. Parsing doubles as admission-time
    /// validation: a malformed expression errors here, before any mining
    /// state exists. Compilation runs outside the cache lock (concurrent
    /// first queries may compile the same expression twice; the second
    /// insert wins and both results are equivalent).
    pub fn compiled(&self, corpus: &Corpus, pexp: &str, unanchored: bool) -> Result<CompiledFst> {
        let canonical = PatEx::parse(pexp)?.to_string();
        let key = (corpus.name.clone(), canonical, unanchored);
        if let Some(fst) = self.cache_lock().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(CompiledFst {
                fst: fst.clone(),
                cache_hit: true,
                compile_nanos: 0,
            });
        }
        #[cfg(feature = "failpoints")]
        desq_core::fault::point("store::compile")?;
        let t0 = Instant::now();
        let builder = MiningSession::builder().dictionary(corpus.dict.clone());
        let builder = if unanchored {
            builder.pattern_unanchored(pexp)
        } else {
            builder.pattern(pexp)
        };
        // The session's dry-run hook: compiles (and validates) without a
        // database, σ or algorithm.
        let fst = builder.compile_only()?;
        let compile_nanos = t0.elapsed().as_nanos() as u64;
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.cache_lock().insert(key, fst.clone());
        Ok(CompiledFst {
            fst,
            cache_hit: false,
            compile_nanos,
        })
    }

    /// Locks the compile cache, recovering from poisoning: entries are
    /// immutable `Arc<Fst>`s inserted whole, so a thread that panicked
    /// while holding the lock cannot have left a half-written entry —
    /// continuing with the map as-is is always safe. (Before this, one
    /// panic under the lock bricked every later query on this store.)
    fn cache_lock(&self) -> MutexGuard<'_, HashMap<(String, String, bool), Arc<Fst>>> {
        self.cache.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Global `(hits, misses)` counters of the FST compile cache.
    pub fn cache_stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_load_and_unknown_specs_error() {
        let mut store = CorpusStore::new();
        store.load_spec("toy", "toy").unwrap();
        store.load_spec("tiny", "nyt:50").unwrap();
        store.load_spec("tiny2", "nyt:50:42").unwrap();
        store.load_spec("shop", "amzn:20").unwrap();
        store.load_spec("web", "cw:20").unwrap();
        assert_eq!(store.names(), ["shop", "tiny", "tiny2", "toy", "web"]);
        assert!(store.get("toy").unwrap().db.len() == 5);
        assert!(store.load_spec("x", "nyt").is_err());
        assert!(store.load_spec("x", "nyt:many").is_err());
        assert!(store.load_spec("x", "nyt:50:notaseed").is_err());
        assert!(store.load_spec("x", "parquet:/tmp/f").is_err());
        assert!(store.get("x").is_none());
    }

    #[test]
    fn cache_hits_on_canonical_equivalence_and_counts() {
        let mut store = CorpusStore::new();
        store.load_spec("toy", "toy").unwrap();
        let corpus = store.get("toy").unwrap().clone();
        let a = store
            .compiled(&corpus, desq_core::toy::PATTERN, false)
            .unwrap();
        assert!(!a.cache_hit);
        assert!(a.compile_nanos > 0);
        // Textually different, canonically identical (whitespace).
        let spaced = format!(" {} ", desq_core::toy::PATTERN);
        let b = store.compiled(&corpus, &spaced, false).unwrap();
        assert!(b.cache_hit);
        assert_eq!(b.compile_nanos, 0);
        assert!(Arc::ptr_eq(&a.fst, &b.fst));
        // Anchoring is part of the key: the unanchored variant is a miss.
        let c = store
            .compiled(&corpus, desq_core::toy::PATTERN, true)
            .unwrap();
        assert!(!c.cache_hit);
        assert_eq!(store.cache_stats(), (1, 2));
        // Admission-time rejection of malformed expressions.
        assert!(store.compiled(&corpus, "([", false).is_err());
        assert_eq!(store.cache_stats(), (1, 2));
    }

    #[test]
    fn cache_survives_lock_poisoning() {
        let mut store = CorpusStore::new();
        store.load_spec("toy", "toy").unwrap();
        let corpus = store.get("toy").unwrap().clone();
        let warm = store
            .compiled(&corpus, desq_core::toy::PATTERN, false)
            .unwrap();
        // Poison the cache mutex: panic while holding the guard, the way a
        // panicking query thread would.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = store.cache.lock().unwrap();
            panic!("injected panic under the fst cache lock");
        }));
        assert!(result.is_err());
        assert!(
            store.cache.lock().is_err(),
            "lock must actually be poisoned"
        );
        // Poisoned or not, the cache keeps serving: the warm entry still
        // hits and new expressions still compile and insert.
        let hit = store
            .compiled(&corpus, desq_core::toy::PATTERN, false)
            .unwrap();
        assert!(hit.cache_hit);
        assert!(Arc::ptr_eq(&warm.fst, &hit.fst));
        let miss = store
            .compiled(&corpus, desq_core::toy::PATTERN, true)
            .unwrap();
        assert!(!miss.cache_hit);
    }
}
