//! The daemon: a TCP accept loop with admission control, running
//! concurrent mining sessions against the shared [`CorpusStore`].
//!
//! # Admission control
//!
//! Overload is answered, never queued: the accept loop tracks a global
//! in-flight connection count and a connection beyond
//! [`ServeLimits::max_inflight`] receives an immediate
//! [`Message::Busy`] frame and is closed — the explicit analog of the
//! paper's executor memory limit, applied to concurrency. Admitted
//! requests are validated *before* mining starts: unknown corpus,
//! malformed pattern expression (via the session's `compile_only` dry
//! run) and budgets above the server's ceiling all produce a terminal
//! [`Message::Error`] frame with zero mining work done.
//!
//! # Query execution
//!
//! Each admitted connection runs on its own thread (the mining itself can
//! additionally fan out over the session's worker threads). The session
//! borrows the store's shared `Arc<Dictionary>` / `Arc<SequenceDb>` and
//! the cached `Arc<Fst>` — per query the server allocates only the
//! session object and the response buffers. Patterns stream back in
//! batches while the search runs ([`desq::session::PatternStream`]); the
//! terminal metrics frame carries the run's `MiningMetrics` plus cache
//! hit/miss counters and the queue-wait time.

use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use desq::session::{default_workers, AlgorithmSpec, MiningSession};
use desq_core::Error;

use crate::proto::{read_frame, write_frame, Message, Request, ServerStats, WireAlgo};
use crate::store::CorpusStore;

/// Server-side resource policy, fixed at spawn time.
#[derive(Debug, Clone)]
pub struct ServeLimits {
    /// Global cap on concurrently served connections; the connection that
    /// would exceed it gets a [`Message::Busy`] frame. Must be positive.
    pub max_inflight: usize,
    /// Ceiling (and `0`-default) of the per-request work budget.
    pub max_budget: usize,
    /// Ceiling (and `0`-default) of the per-request pattern cap.
    pub max_patterns: usize,
    /// Ceiling of the per-request worker threads (a request of `0` means
    /// 1 worker, not this ceiling — parallelism is opt-in per query).
    pub max_workers: usize,
    /// Patterns per streamed response frame.
    pub batch: usize,
}

impl Default for ServeLimits {
    fn default() -> ServeLimits {
        ServeLimits {
            max_inflight: 8,
            max_budget: desq_core::mining::DEFAULT_BUDGET,
            max_patterns: 1_000_000,
            max_workers: default_workers(),
            batch: 512,
        }
    }
}

/// A configured, not-yet-listening server.
pub struct Server {
    store: Arc<CorpusStore>,
    limits: ServeLimits,
}

impl Server {
    /// A server over `store` with default [`ServeLimits`].
    pub fn new(store: CorpusStore) -> Server {
        Server {
            store: Arc::new(store),
            limits: ServeLimits::default(),
        }
    }

    /// Overrides the resource policy.
    pub fn with_limits(mut self, limits: ServeLimits) -> Server {
        self.limits = limits;
        self
    }

    /// Binds `bind` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts the accept loop on a background thread.
    pub fn spawn(self, bind: &str) -> std::io::Result<ServerHandle> {
        assert!(
            self.limits.max_inflight > 0,
            "max_inflight must be positive"
        );
        assert!(self.limits.batch > 0, "batch must be positive");
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = stop.clone();
        let store = self.store;
        let limits = self.limits;
        let accept = std::thread::spawn(move || {
            let inflight = Arc::new(AtomicUsize::new(0));
            for conn in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let t_accept = Instant::now();
                // Admission: claim a slot or answer Busy and close.
                let slots = inflight.fetch_add(1, Ordering::SeqCst);
                if slots >= limits.max_inflight {
                    inflight.fetch_sub(1, Ordering::SeqCst);
                    let mut w = BufWriter::new(stream);
                    let _ = write_frame(
                        &mut w,
                        &Message::Busy {
                            in_flight: slots as u64,
                            cap: limits.max_inflight as u64,
                        },
                    );
                    continue;
                }
                let store = store.clone();
                let limits = limits.clone();
                let inflight = inflight.clone();
                std::thread::spawn(move || {
                    // Slot released on every exit path, including panics in
                    // the handler.
                    struct Slot(Arc<AtomicUsize>);
                    impl Drop for Slot {
                        fn drop(&mut self) {
                            self.0.fetch_sub(1, Ordering::SeqCst);
                        }
                    }
                    let _slot = Slot(inflight);
                    handle_conn(&store, &limits, stream, t_accept);
                });
            }
        });
        Ok(ServerHandle {
            addr,
            stop,
            accept: Some(accept),
        })
    }
}

/// Handle of a running server: its bound address and the shutdown switch.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The actually-bound address (resolves an ephemeral `:0` port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the accept loop exits (daemon mode: forever, unless
    /// another thread calls [`shutdown`](Self::shutdown)).
    pub fn wait(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }

    /// Stops accepting connections and joins the accept loop. In-flight
    /// queries run to completion on their own threads.
    pub fn shutdown(mut self) {
        self.stop_accept_loop();
    }

    fn stop_accept_loop(&mut self) {
        let Some(accept) = self.accept.take() else {
            return;
        };
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept call; the loop sees the flag and exits. (The
        // probe connection may be answered Busy or accepted-then-dropped —
        // both are fine, it is never a request.)
        let _ = TcpStream::connect(self.addr);
        let _ = accept.join();
    }
}

impl Drop for ServerHandle {
    /// Dropping the handle shuts the server down (tests that spawn on
    /// ephemeral ports never leak accept loops).
    fn drop(&mut self) {
        self.stop_accept_loop();
    }
}

/// Serves one connection: read one request frame, answer with pattern
/// frames plus a terminal frame, close.
fn handle_conn(store: &CorpusStore, limits: &ServeLimits, stream: TcpStream, t_accept: Instant) {
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let Ok(payload) = read_frame(&mut reader) else {
        return; // connection dropped before a full request arrived
    };
    let reply = match Message::decode(&payload) {
        Ok(Message::Request(req)) => serve_request(store, limits, &req, &mut writer, t_accept),
        Ok(_) => Err(Error::Invalid("expected a request frame".into())),
        Err(e) => Err(e),
    };
    let terminal = match reply {
        Ok(msg) => msg,
        Err(e) => Message::Error(e),
    };
    let _ = write_frame(&mut writer, &terminal);
    let _ = writer.flush();
}

/// Validates and runs one query, streaming pattern frames to `writer`.
/// Returns the terminal frame (metrics on success, the error otherwise).
fn serve_request(
    store: &CorpusStore,
    limits: &ServeLimits,
    req: &Request,
    writer: &mut BufWriter<TcpStream>,
    t_accept: Instant,
) -> Result<Message, Error> {
    let corpus = store.get(&req.corpus).ok_or_else(|| {
        Error::Invalid(format!(
            "unknown corpus {:?} (resident: {})",
            req.corpus,
            store.names().join(", ")
        ))
    })?;
    let budget = effective(req.budget, limits.max_budget, "budget")?;
    let max_patterns = effective(req.max_patterns, limits.max_patterns, "max_patterns")?;
    // `0` workers means 1 (deterministic single-worker mining and stream
    // order), not the ceiling — parallelism is strictly opt-in per query.
    let workers = if req.workers == 0 {
        1
    } else {
        effective(req.workers, limits.max_workers, "workers")?
    };

    // Admission-time constraint validation + compile cache.
    let compiled = store.compiled(corpus, &req.pexp, req.unanchored)?;

    let algorithm = match req.algo {
        WireAlgo::DesqDfs => AlgorithmSpec::DesqDfs,
        WireAlgo::DesqCount => AlgorithmSpec::DesqCount,
        WireAlgo::DSeq => AlgorithmSpec::d_seq(),
        WireAlgo::DCand => AlgorithmSpec::d_cand(),
    };
    let session = MiningSession::builder()
        .dictionary(corpus.dict.clone())
        .database(corpus.db.clone())
        .fst(compiled.fst.clone())
        .sigma(req.sigma)
        .algorithm(algorithm)
        .budget(budget)
        .max_patterns(max_patterns)
        .workers(workers)
        .build()?;

    let queue_wait_nanos = t_accept.elapsed().as_nanos() as u64;
    let mut pattern_stream = session.stream();
    let mut batch = Vec::with_capacity(limits.batch);
    for pattern in &mut pattern_stream {
        batch.push(pattern);
        if batch.len() == limits.batch {
            if write_frame(writer, &Message::Patterns(std::mem::take(&mut batch))).is_err() {
                // Client went away: dropping the stream cancels the search.
                return Err(Error::Invalid("client disconnected mid-stream".into()));
            }
            batch.reserve(limits.batch);
        }
    }
    if !batch.is_empty() && write_frame(writer, &Message::Patterns(batch)).is_err() {
        return Err(Error::Invalid("client disconnected mid-stream".into()));
    }
    let mining = pattern_stream.finish()?;
    let (cache_hits, cache_misses) = store.cache_stats();
    Ok(Message::Metrics {
        mining,
        stats: ServerStats {
            cache_hit: compiled.cache_hit,
            cache_hits,
            cache_misses,
            queue_wait_nanos,
            compile_nanos: compiled.compile_nanos,
        },
    })
}

/// Resolves a request knob against the server ceiling: `0` means "server
/// default" (the ceiling itself for budget/max_patterns, later clamped to
/// 1 for workers); above the ceiling is an admission error.
fn effective(requested: u64, ceiling: usize, what: &str) -> Result<usize, Error> {
    if requested == 0 {
        return Ok(ceiling);
    }
    let requested = usize::try_from(requested)
        .map_err(|_| Error::Invalid(format!("{what} {requested} does not fit this server")))?;
    if requested > ceiling {
        return Err(Error::Invalid(format!(
            "requested {what} {requested} exceeds the server ceiling {ceiling}"
        )));
    }
    Ok(requested)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_resolves_defaults_and_rejects_over_ceiling() {
        assert_eq!(effective(0, 100, "budget").unwrap(), 100);
        assert_eq!(effective(7, 100, "budget").unwrap(), 7);
        let err = effective(101, 100, "budget").unwrap_err();
        assert!(
            matches!(err, Error::Invalid(ref m) if m.contains("ceiling")),
            "{err}"
        );
    }
}
