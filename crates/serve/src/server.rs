//! The daemon: a TCP accept loop with admission control, running
//! concurrent mining sessions against the shared [`CorpusStore`].
//!
//! # Admission control
//!
//! Overload is answered, never queued: the accept loop tracks a global
//! in-flight connection count and a connection beyond
//! [`ServeLimits::max_inflight`] receives an immediate
//! [`Message::Busy`] frame and is closed — the explicit analog of the
//! paper's executor memory limit, applied to concurrency. Admitted
//! requests are validated *before* mining starts: unknown corpus,
//! malformed pattern expression (via the session's `compile_only` dry
//! run) and budgets above the server's ceiling all produce a terminal
//! [`Message::Error`] frame with zero mining work done.
//!
//! # Failure domains
//!
//! Each connection is its own failure domain, bounded four ways:
//!
//! * **Socket timeouts** ([`ServeLimits::read_timeout`] /
//!   [`ServeLimits::write_timeout`]): a client that connects and never
//!   sends a complete request, or stops draining its response, is evicted
//!   and its admission slot released instead of pinning it forever.
//! * **Deadlines**: the effective wall-clock deadline of a query is
//!   `min(request deadline,` [`ServeLimits::max_deadline`]`)`; an
//!   over-deadline run is cancelled cooperatively inside the mining
//!   kernels and ends with a terminal `DeadlineExceeded` error frame.
//! * **Panic containment**: a panic anywhere in request handling —
//!   including one escaping the mining session — is caught at the
//!   connection boundary and converted to a terminal `WorkerPanicked`
//!   error frame; the server keeps serving other connections.
//! * **Cancel-on-disconnect**: a write error mid-stream cancels the
//!   connection's [`CancelToken`] immediately, so the mining run stops at
//!   its next cooperative checkpoint instead of completing for nobody.
//!
//! [`ServerHandle::shutdown`] drains: it stops accepting, cancels every
//! in-flight session's token, and joins connection threads for at most
//! [`ServeLimits::drain_grace`] — in-flight clients get a terminal
//! `Cancelled` frame rather than a dead socket. The global
//! timeout/panic/cancel counters ride on every terminal metrics frame
//! ([`crate::proto::ServerStats`]).
//!
//! # Query execution
//!
//! Each admitted connection runs on its own thread (the mining itself can
//! additionally fan out over the session's worker threads). The session
//! borrows the store's shared `Arc<Dictionary>` / `Arc<SequenceDb>` and
//! the cached `Arc<Fst>` — per query the server allocates only the
//! session object and the response buffers. Patterns stream back in
//! batches while the search runs ([`desq::session::PatternStream`]); the
//! terminal metrics frame carries the run's `MiningMetrics` plus cache
//! hit/miss counters and the queue-wait time.

use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use desq::session::{default_workers, AlgorithmSpec, MiningSession};
use desq_core::mining::{panic_message, CancelToken};
use desq_core::Error;

use crate::proto::{read_frame, write_frame, Message, Request, ServerStats, WireAlgo};
use crate::store::CorpusStore;

/// Server-side resource policy, fixed at spawn time.
#[derive(Debug, Clone)]
pub struct ServeLimits {
    /// Global cap on concurrently served connections; the connection that
    /// would exceed it gets a [`Message::Busy`] frame. Must be positive.
    pub max_inflight: usize,
    /// Ceiling (and `0`-default) of the per-request work budget.
    pub max_budget: usize,
    /// Ceiling (and `0`-default) of the per-request pattern cap.
    pub max_patterns: usize,
    /// Ceiling of the per-request worker threads (a request of `0` means
    /// 1 worker, not this ceiling — parallelism is opt-in per query).
    pub max_workers: usize,
    /// Patterns per streamed response frame.
    pub batch: usize,
    /// Socket read timeout: a connection that has not delivered a complete
    /// request within this window is evicted and its admission slot
    /// released. `None` disables the timeout (a stalled client then pins
    /// its slot until it disconnects).
    pub read_timeout: Option<Duration>,
    /// Socket write timeout: a client that stops draining its response is
    /// treated as gone — the query is cancelled and the slot released.
    /// `None` disables the timeout.
    pub write_timeout: Option<Duration>,
    /// Ceiling on the per-request wall-clock deadline: the effective
    /// deadline is `min(request, ceiling)`. `None` means no server-imposed
    /// deadline (client-requested deadlines still apply).
    pub max_deadline: Option<Duration>,
    /// How long [`ServerHandle::shutdown`] waits for cancelled in-flight
    /// sessions to finish before giving up on joining their threads.
    pub drain_grace: Duration,
}

impl Default for ServeLimits {
    fn default() -> ServeLimits {
        ServeLimits {
            max_inflight: 8,
            max_budget: desq_core::mining::DEFAULT_BUDGET,
            max_patterns: 1_000_000,
            max_workers: default_workers(),
            batch: 512,
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            max_deadline: None,
            drain_grace: Duration::from_secs(5),
        }
    }
}

/// State shared between the accept loop, the connection threads and the
/// [`ServerHandle`]: the in-flight count, the cancellation tokens of
/// running sessions (for drain shutdown), and the global failure
/// counters surfaced in [`ServerStats`].
struct Shared {
    inflight: AtomicUsize,
    next_session: AtomicU64,
    sessions: Mutex<HashMap<u64, CancelToken>>,
    timeouts: AtomicU64,
    panics: AtomicU64,
    cancels: AtomicU64,
}

impl Shared {
    fn new() -> Shared {
        Shared {
            inflight: AtomicUsize::new(0),
            next_session: AtomicU64::new(0),
            sessions: Mutex::new(HashMap::new()),
            timeouts: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            cancels: AtomicU64::new(0),
        }
    }

    fn sessions_lock(&self) -> std::sync::MutexGuard<'_, HashMap<u64, CancelToken>> {
        // Tokens are atomics behind Arcs; a poisoned map is still
        // consistent between operations.
        self.sessions.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Trips every in-flight session's token (drain shutdown).
    fn cancel_all(&self) {
        for token in self.sessions_lock().values() {
            token.cancel();
        }
    }

    /// Counts a terminal failure by class, so the next successful query's
    /// metrics frame reports it.
    fn count_failure(&self, e: &Error) {
        match e {
            Error::DeadlineExceeded(_) => self.timeouts.fetch_add(1, Ordering::Relaxed),
            Error::Cancelled(_) => self.cancels.fetch_add(1, Ordering::Relaxed),
            Error::WorkerPanicked(_) => self.panics.fetch_add(1, Ordering::Relaxed),
            _ => return,
        };
    }
}

/// Registers a session token for drain cancellation, deregistering on
/// drop (every exit path of the connection handler, including panics).
struct SessionReg<'a> {
    shared: &'a Shared,
    id: u64,
}

impl<'a> SessionReg<'a> {
    fn new(shared: &'a Shared, token: CancelToken) -> SessionReg<'a> {
        let id = shared.next_session.fetch_add(1, Ordering::Relaxed);
        shared.sessions_lock().insert(id, token);
        SessionReg { shared, id }
    }
}

impl Drop for SessionReg<'_> {
    fn drop(&mut self) {
        self.shared.sessions_lock().remove(&self.id);
    }
}

/// A configured, not-yet-listening server.
pub struct Server {
    store: Arc<CorpusStore>,
    limits: ServeLimits,
}

impl Server {
    /// A server over `store` with default [`ServeLimits`].
    pub fn new(store: CorpusStore) -> Server {
        Server {
            store: Arc::new(store),
            limits: ServeLimits::default(),
        }
    }

    /// Overrides the resource policy.
    pub fn with_limits(mut self, limits: ServeLimits) -> Server {
        self.limits = limits;
        self
    }

    /// Binds `bind` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts the accept loop on a background thread.
    pub fn spawn(self, bind: &str) -> std::io::Result<ServerHandle> {
        assert!(
            self.limits.max_inflight > 0,
            "max_inflight must be positive"
        );
        assert!(self.limits.batch > 0, "batch must be positive");
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(Shared::new());
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_stop = stop.clone();
        let accept_shared = shared.clone();
        let accept_conns = conns.clone();
        let store = self.store;
        let grace = self.limits.drain_grace;
        let limits = self.limits;
        let accept = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let t_accept = Instant::now();
                // Admission: claim a slot or answer Busy and close.
                let slots = accept_shared.inflight.fetch_add(1, Ordering::SeqCst);
                if slots >= limits.max_inflight {
                    accept_shared.inflight.fetch_sub(1, Ordering::SeqCst);
                    let mut w = BufWriter::new(stream);
                    let _ = write_frame(
                        &mut w,
                        &Message::Busy {
                            in_flight: slots as u64,
                            cap: limits.max_inflight as u64,
                        },
                    );
                    continue;
                }
                let store = store.clone();
                let limits = limits.clone();
                let shared = accept_shared.clone();
                let handle = std::thread::spawn(move || {
                    // Slot released on every exit path, including panics in
                    // the handler.
                    struct Slot<'a>(&'a Shared);
                    impl Drop for Slot<'_> {
                        fn drop(&mut self) {
                            self.0.inflight.fetch_sub(1, Ordering::SeqCst);
                        }
                    }
                    let _slot = Slot(&shared);
                    handle_conn(&store, &limits, &shared, stream, t_accept);
                });
                let mut conns = accept_conns.lock().unwrap_or_else(PoisonError::into_inner);
                // Reap finished threads as we go so a long-lived daemon's
                // handle list doesn't grow with every served connection.
                conns.retain(|h| !h.is_finished());
                conns.push(handle);
            }
        });
        Ok(ServerHandle {
            addr,
            stop,
            accept: Some(accept),
            shared,
            conns,
            grace,
        })
    }
}

/// Handle of a running server: its bound address and the shutdown switch.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    shared: Arc<Shared>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    grace: Duration,
}

impl ServerHandle {
    /// The actually-bound address (resolves an ephemeral `:0` port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the accept loop exits (daemon mode: forever, unless
    /// another thread calls [`shutdown`](Self::shutdown)).
    pub fn wait(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }

    /// Drain shutdown: stops accepting connections, cancels every
    /// in-flight session (each affected client receives a terminal
    /// `Cancelled` error frame), and joins connection threads for at most
    /// the configured [`ServeLimits::drain_grace`]. A thread that outlives
    /// the grace period — e.g. a client stalled inside the socket read
    /// timeout — is left detached rather than blocking shutdown.
    pub fn shutdown(mut self) {
        self.drain();
    }

    fn drain(&mut self) {
        let Some(accept) = self.accept.take() else {
            return;
        };
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept call; the loop sees the flag and exits. (The
        // probe connection may be answered Busy or accepted-then-dropped —
        // both are fine, it is never a request.)
        let _ = TcpStream::connect(self.addr);
        let _ = accept.join();
        // Cancel in-flight sessions; their handlers notice at the next
        // cooperative checkpoint, answer `Cancelled`, and release slots.
        self.shared.cancel_all();
        let deadline = Instant::now() + self.grace;
        while self.shared.inflight.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let handles =
            std::mem::take(&mut *self.conns.lock().unwrap_or_else(PoisonError::into_inner));
        for handle in handles {
            // Only join what finished within the grace period.
            if handle.is_finished() {
                let _ = handle.join();
            }
        }
    }
}

impl Drop for ServerHandle {
    /// Dropping the handle shuts the server down with the same drain
    /// semantics as [`shutdown`](Self::shutdown) (tests that spawn on
    /// ephemeral ports never leak accept loops).
    fn drop(&mut self) {
        self.drain();
    }
}

/// True for the error kinds a timed-out socket read/write produces
/// (platform-dependent: `WouldBlock` on Unix, `TimedOut` on Windows).
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Serves one connection: read one request frame, answer with pattern
/// frames plus a terminal frame, close.
fn handle_conn(
    store: &CorpusStore,
    limits: &ServeLimits,
    shared: &Shared,
    stream: TcpStream,
    t_accept: Instant,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(limits.read_timeout);
    let _ = stream.set_write_timeout(limits.write_timeout);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let payload = match read_frame(&mut reader) {
        Ok(payload) => payload,
        Err(e) => {
            if is_timeout(&e) {
                // Stalled client: evict with an explicit terminal frame
                // (it may still be reading) and release the slot.
                shared.timeouts.fetch_add(1, Ordering::Relaxed);
                let _ = write_frame(
                    &mut writer,
                    &Message::Error(Error::DeadlineExceeded(
                        "no complete request within the server's read timeout".into(),
                    )),
                );
            }
            return; // slot released by the accept loop's guard
        }
    };
    let reply = match Message::decode(&payload) {
        Ok(Message::Request(req)) => {
            // Effective deadline: the tighter of what the client asked for
            // and what the server tolerates.
            let requested =
                (req.deadline_millis > 0).then(|| Duration::from_millis(req.deadline_millis));
            let deadline = match (requested, limits.max_deadline) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            let token = CancelToken::new();
            if let Some(d) = deadline {
                token.arm_deadline(d);
            }
            // Registered for drain cancellation until the reply is built.
            let _reg = SessionReg::new(shared, token.clone());
            // The connection is the panic boundary: a panic anywhere in
            // request handling becomes a terminal error frame and the
            // server keeps serving.
            catch_unwind(AssertUnwindSafe(|| {
                serve_request(store, limits, shared, &req, &token, &mut writer, t_accept)
            }))
            .unwrap_or_else(|payload| Err(Error::WorkerPanicked(panic_message(payload.as_ref()))))
        }
        Ok(_) => Err(Error::Invalid("expected a request frame".into())),
        Err(e) => Err(e),
    };
    let terminal = match reply {
        Ok(msg) => msg,
        Err(e) => {
            shared.count_failure(&e);
            Message::Error(e)
        }
    };
    let _ = write_frame(&mut writer, &terminal);
    let _ = writer.flush();
}

/// Validates and runs one query, streaming pattern frames to `writer`.
/// Returns the terminal frame (metrics on success, the error otherwise).
#[allow(clippy::too_many_arguments)]
fn serve_request(
    store: &CorpusStore,
    limits: &ServeLimits,
    shared: &Shared,
    req: &Request,
    token: &CancelToken,
    writer: &mut BufWriter<TcpStream>,
    t_accept: Instant,
) -> Result<Message, Error> {
    let corpus = store.get(&req.corpus).ok_or_else(|| {
        Error::Invalid(format!(
            "unknown corpus {:?} (resident: {})",
            req.corpus,
            store.names().join(", ")
        ))
    })?;
    let budget = effective(req.budget, limits.max_budget, "budget")?;
    let max_patterns = effective(req.max_patterns, limits.max_patterns, "max_patterns")?;
    // `0` workers means 1 (deterministic single-worker mining and stream
    // order), not the ceiling — parallelism is strictly opt-in per query.
    let workers = if req.workers == 0 {
        1
    } else {
        effective(req.workers, limits.max_workers, "workers")?
    };

    // Admission-time constraint validation + compile cache.
    let compiled = store.compiled(corpus, &req.pexp, req.unanchored)?;

    let algorithm = match req.algo {
        WireAlgo::DesqDfs => AlgorithmSpec::DesqDfs,
        WireAlgo::DesqCount => AlgorithmSpec::DesqCount,
        WireAlgo::DSeq => AlgorithmSpec::d_seq(),
        WireAlgo::DCand => AlgorithmSpec::d_cand(),
    };
    let session = MiningSession::builder()
        .dictionary(corpus.dict.clone())
        .database(corpus.db.clone())
        .fst(compiled.fst.clone())
        .sigma(req.sigma)
        .algorithm(algorithm)
        .budget(budget)
        .max_patterns(max_patterns)
        .workers(workers)
        .cancel_token(token.clone())
        .build()?;

    let queue_wait_nanos = t_accept.elapsed().as_nanos() as u64;
    let mut pattern_stream = session.stream();
    let mut batch = Vec::with_capacity(limits.batch);
    for pattern in &mut pattern_stream {
        batch.push(pattern);
        if batch.len() == limits.batch {
            if let Err(e) = write_frame(writer, &Message::Patterns(std::mem::take(&mut batch))) {
                return Err(abort_for_peer(shared, token, &e));
            }
            batch.reserve(limits.batch);
        }
    }
    if !batch.is_empty() {
        if let Err(e) = write_frame(writer, &Message::Patterns(batch)) {
            return Err(abort_for_peer(shared, token, &e));
        }
    }
    let mining = pattern_stream.finish()?;
    #[cfg(feature = "failpoints")]
    desq_core::fault::point("serve::before_reply")?;
    let (cache_hits, cache_misses) = store.cache_stats();
    Ok(Message::Metrics {
        mining,
        stats: ServerStats {
            cache_hit: compiled.cache_hit,
            cache_hits,
            cache_misses,
            queue_wait_nanos,
            compile_nanos: compiled.compile_nanos,
            timeouts: shared.timeouts.load(Ordering::Relaxed),
            panics: shared.panics.load(Ordering::Relaxed),
            cancels: shared.cancels.load(Ordering::Relaxed),
            fst_states_before: compiled.fst.states_before_opt() as u64,
            fst_states_after: compiled.fst.num_states() as u64,
            fst_transitions_before: compiled.fst.transitions_before_opt() as u64,
            fst_transitions_after: compiled.fst.num_transitions() as u64,
        },
    })
}

/// The peer went away (or stopped reading) mid-stream: trip the token
/// *before* the pattern stream is dropped so the mining run stops at its
/// next cooperative checkpoint instead of completing for nobody.
fn abort_for_peer(shared: &Shared, token: &CancelToken, e: &std::io::Error) -> Error {
    token.cancel();
    if is_timeout(e) {
        shared.timeouts.fetch_add(1, Ordering::Relaxed);
        Error::DeadlineExceeded("client stopped reading (write timeout)".into())
    } else {
        Error::Cancelled("client disconnected mid-stream".into())
    }
}

/// Resolves a request knob against the server ceiling: `0` means "server
/// default" (the ceiling itself for budget/max_patterns, later clamped to
/// 1 for workers); above the ceiling is an admission error.
fn effective(requested: u64, ceiling: usize, what: &str) -> Result<usize, Error> {
    if requested == 0 {
        return Ok(ceiling);
    }
    let requested = usize::try_from(requested)
        .map_err(|_| Error::Invalid(format!("{what} {requested} does not fit this server")))?;
    if requested > ceiling {
        return Err(Error::Invalid(format!(
            "requested {what} {requested} exceeds the server ceiling {ceiling}"
        )));
    }
    Ok(requested)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_resolves_defaults_and_rejects_over_ceiling() {
        assert_eq!(effective(0, 100, "budget").unwrap(), 100);
        assert_eq!(effective(7, 100, "budget").unwrap(), 7);
        let err = effective(101, 100, "budget").unwrap_err();
        assert!(
            matches!(err, Error::Invalid(ref m) if m.contains("ceiling")),
            "{err}"
        );
    }

    #[test]
    fn failure_counters_classify_terminal_errors() {
        let shared = Shared::new();
        shared.count_failure(&Error::DeadlineExceeded("d".into()));
        shared.count_failure(&Error::Cancelled("c".into()));
        shared.count_failure(&Error::Cancelled("c".into()));
        shared.count_failure(&Error::WorkerPanicked("p".into()));
        shared.count_failure(&Error::Invalid("not a failure-domain error".into()));
        assert_eq!(shared.timeouts.load(Ordering::Relaxed), 1);
        assert_eq!(shared.cancels.load(Ordering::Relaxed), 2);
        assert_eq!(shared.panics.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn session_registry_tracks_and_drops() {
        let shared = Shared::new();
        let token = CancelToken::new();
        {
            let _reg = SessionReg::new(&shared, token.clone());
            assert_eq!(shared.sessions_lock().len(), 1);
            shared.cancel_all();
        }
        assert!(token.is_stopped(), "drain must trip registered tokens");
        assert!(shared.sessions_lock().is_empty(), "drop deregisters");
    }
}
