//! The thin blocking client: one TCP connection per query.
//!
//! [`Client::query`] sends a single [`Request`] frame, then consumes the
//! streamed response — pattern frames as they arrive, then the terminal
//! frame — and returns everything the server said: decoded patterns, the
//! run's [`MiningMetrics`], the server's [`ServerStats`], and the raw
//! pattern-frame payload bytes (which the integration tests use to prove
//! that warm cache hits are *byte-identical* to their cold counterpart).
//!
//! Transient failures — the server's explicit `Busy` overload answer and
//! a refused connection (daemon restarting) — can be retried with an
//! opt-in [`RetryPolicy`]: bounded attempts with jittered exponential
//! backoff. Every other failure (server-side errors, protocol errors,
//! mid-stream I/O) is returned immediately; retrying a query the server
//! *rejected* would never help, and retrying one that *started* could run
//! it twice.

use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use desq_core::{MiningMetrics, Sequence};

use crate::proto::{read_frame, write_frame, Message, Request, ServerStats};
use crate::{ServeError, ServeResult};

/// Bounded, jittered exponential backoff for transient failures
/// ([`ServeError::Busy`] and connection-refused).
///
/// Attempt `n` (0-based) sleeps `base_delay · 2ⁿ` capped at `max_delay`,
/// plus a deterministic jitter of up to half that delay derived from
/// `seed` — concurrent clients with different seeds spread out instead of
/// retrying in lockstep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (total attempts = `max_retries+1`).
    pub max_retries: u32,
    /// Backoff of the first retry.
    pub base_delay: Duration,
    /// Upper bound on any single backoff (pre-jitter).
    pub max_delay: Duration,
    /// Seed of the deterministic jitter sequence.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 5,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(500),
            seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

impl RetryPolicy {
    /// The sleep before retry `attempt` (0-based): exponential backoff
    /// with deterministic jitter in `[0, delay/2]`.
    fn backoff(&self, attempt: u32) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(2u32.saturating_pow(attempt))
            .min(self.max_delay);
        // xorshift* keyed by (seed, attempt): reproducible per client,
        // decorrelated across clients with different seeds.
        let mut x = self.seed
            ^ (u64::from(attempt)
                .wrapping_add(1)
                .wrapping_mul(0x2545_F491_4F6C_DD1D));
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let half = exp.as_nanos() as u64 / 2;
        let jitter = if half == 0 { 0 } else { x % half };
        exp + Duration::from_nanos(jitter)
    }
}

/// True for the failures worth retrying: explicit overload and a refused
/// connection. Everything else is either permanent or already ran.
fn transient(e: &ServeError) -> bool {
    match e {
        ServeError::Busy { .. } => true,
        ServeError::Io(io) => io.kind() == std::io::ErrorKind::ConnectionRefused,
        _ => false,
    }
}

/// A handle on a `desq-serve` daemon address. Connections are established
/// per query (the protocol is one conversation per connection).
#[derive(Debug, Clone, Copy)]
pub struct Client {
    addr: SocketAddr,
    retry: Option<RetryPolicy>,
}

/// Everything one successful query returned.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The mined patterns with frequencies, in the server's stream order
    /// (discovery order — sort for the session's canonical ordering).
    pub patterns: Vec<(Sequence, u64)>,
    /// The mining run's uniform metrics.
    pub metrics: MiningMetrics,
    /// The server's cache and queue-wait accounting.
    pub stats: ServerStats,
    /// Concatenated payload bytes of every pattern frame, verbatim as
    /// they came off the wire.
    pub pattern_bytes: Vec<u8>,
}

impl Client {
    /// A client for the daemon at `addr` (no retries).
    pub fn new(addr: SocketAddr) -> Client {
        Client { addr, retry: None }
    }

    /// Opts into retrying transient failures under `policy`.
    pub fn with_retry(mut self, policy: RetryPolicy) -> Client {
        self.retry = Some(policy);
        self
    }

    /// Runs one query to completion, collecting the streamed patterns.
    ///
    /// Distinguishes its failures: [`ServeError::Busy`] when the server's
    /// admission cap rejected the connection, [`ServeError::Remote`] when
    /// the server rejected or aborted the query (unknown corpus, parse
    /// error, budget exhaustion, deadline, cancellation — carrying the
    /// server's [`desq_core::Error`] verbatim), [`ServeError::Io`] on
    /// transport failures. With [`with_retry`](Self::with_retry), `Busy`
    /// and connection-refused are retried under the policy before the
    /// last error is returned.
    pub fn query(&self, req: &Request) -> ServeResult<QueryOutcome> {
        let Some(policy) = self.retry else {
            return self.query_once(req);
        };
        let mut attempt = 0u32;
        loop {
            match self.query_once(req) {
                Err(e) if transient(&e) && attempt < policy.max_retries => {
                    std::thread::sleep(policy.backoff(attempt));
                    attempt += 1;
                }
                other => return other,
            }
        }
    }

    fn query_once(&self, req: &Request) -> ServeResult<QueryOutcome> {
        let stream = TcpStream::connect(self.addr)?;
        let _ = stream.set_nodelay(true);
        let mut writer = BufWriter::new(stream.try_clone()?);
        let mut reader = BufReader::new(stream);
        write_frame(&mut writer, &Message::Request(req.clone()))?;
        let mut patterns = Vec::new();
        let mut pattern_bytes = Vec::new();
        loop {
            let payload = read_frame(&mut reader)?;
            match Message::decode(&payload)? {
                Message::Patterns(batch) => {
                    pattern_bytes.extend_from_slice(&payload);
                    patterns.extend(batch);
                }
                Message::Metrics { mining, stats } => {
                    return Ok(QueryOutcome {
                        patterns,
                        metrics: mining,
                        stats,
                        pattern_bytes,
                    });
                }
                Message::Error(e) => return Err(ServeError::Remote(e)),
                Message::Busy { in_flight, cap } => {
                    return Err(ServeError::Busy { in_flight, cap })
                }
                Message::Request(_) => {
                    return Err(ServeError::Core(desq_core::Error::Decode(
                        "server sent a request frame".into(),
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_is_capped_and_jitter_is_bounded() {
        let policy = RetryPolicy {
            max_retries: 8,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(100),
            seed: 42,
        };
        let mut prev_base = Duration::ZERO;
        for attempt in 0..8 {
            let base = policy
                .base_delay
                .saturating_mul(2u32.saturating_pow(attempt))
                .min(policy.max_delay);
            let d = policy.backoff(attempt);
            assert!(d >= base, "attempt {attempt}: {d:?} < base {base:?}");
            assert!(
                d <= base + base / 2 + Duration::from_nanos(1),
                "attempt {attempt}: jitter exceeds half the delay: {d:?}"
            );
            assert!(base >= prev_base, "backoff must not shrink");
            prev_base = base;
        }
        // Deterministic per seed, different across seeds.
        assert_eq!(policy.backoff(3), policy.backoff(3));
        let other = RetryPolicy { seed: 43, ..policy };
        assert_ne!(policy.backoff(3), other.backoff(3));
    }

    #[test]
    fn only_busy_and_connection_refused_are_transient() {
        assert!(transient(&ServeError::Busy {
            in_flight: 1,
            cap: 1
        }));
        assert!(transient(&ServeError::Io(std::io::Error::from(
            std::io::ErrorKind::ConnectionRefused
        ))));
        assert!(!transient(&ServeError::Io(std::io::Error::from(
            std::io::ErrorKind::UnexpectedEof
        ))));
        assert!(!transient(&ServeError::Remote(desq_core::Error::Invalid(
            "unknown corpus".into()
        ))));
        assert!(!transient(&ServeError::Remote(
            desq_core::Error::DeadlineExceeded("50ms".into())
        )));
    }
}
