//! The thin blocking client: one TCP connection per query.
//!
//! [`Client::query`] sends a single [`Request`] frame, then consumes the
//! streamed response — pattern frames as they arrive, then the terminal
//! frame — and returns everything the server said: decoded patterns, the
//! run's [`MiningMetrics`], the server's [`ServerStats`], and the raw
//! pattern-frame payload bytes (which the integration tests use to prove
//! that warm cache hits are *byte-identical* to their cold counterpart).

use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpStream};

use desq_core::{MiningMetrics, Sequence};

use crate::proto::{read_frame, write_frame, Message, Request, ServerStats};
use crate::{ServeError, ServeResult};

/// A handle on a `desq-serve` daemon address. Connections are established
/// per query (the protocol is one conversation per connection).
#[derive(Debug, Clone, Copy)]
pub struct Client {
    addr: SocketAddr,
}

/// Everything one successful query returned.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The mined patterns with frequencies, in the server's stream order
    /// (discovery order — sort for the session's canonical ordering).
    pub patterns: Vec<(Sequence, u64)>,
    /// The mining run's uniform metrics.
    pub metrics: MiningMetrics,
    /// The server's cache and queue-wait accounting.
    pub stats: ServerStats,
    /// Concatenated payload bytes of every pattern frame, verbatim as
    /// they came off the wire.
    pub pattern_bytes: Vec<u8>,
}

impl Client {
    /// A client for the daemon at `addr`.
    pub fn new(addr: SocketAddr) -> Client {
        Client { addr }
    }

    /// Runs one query to completion, collecting the streamed patterns.
    ///
    /// Distinguishes its failures: [`ServeError::Busy`] when the server's
    /// admission cap rejected the connection, [`ServeError::Remote`] when
    /// the server rejected or aborted the query (unknown corpus, parse
    /// error, budget exhaustion — carrying the server's
    /// [`desq_core::Error`] verbatim), [`ServeError::Io`] on transport
    /// failures.
    pub fn query(&self, req: &Request) -> ServeResult<QueryOutcome> {
        let stream = TcpStream::connect(self.addr)?;
        let _ = stream.set_nodelay(true);
        let mut writer = BufWriter::new(stream.try_clone()?);
        let mut reader = BufReader::new(stream);
        write_frame(&mut writer, &Message::Request(req.clone()))?;
        let mut patterns = Vec::new();
        let mut pattern_bytes = Vec::new();
        loop {
            let payload = read_frame(&mut reader)?;
            match Message::decode(&payload)? {
                Message::Patterns(batch) => {
                    pattern_bytes.extend_from_slice(&payload);
                    patterns.extend(batch);
                }
                Message::Metrics { mining, stats } => {
                    return Ok(QueryOutcome {
                        patterns,
                        metrics: mining,
                        stats,
                        pattern_bytes,
                    });
                }
                Message::Error(e) => return Err(ServeError::Remote(e)),
                Message::Busy { in_flight, cap } => {
                    return Err(ServeError::Busy { in_flight, cap })
                }
                Message::Request(_) => {
                    return Err(ServeError::Core(desq_core::Error::Decode(
                        "server sent a request frame".into(),
                    )))
                }
            }
        }
    }
}
