//! The thin blocking client: one TCP connection per query.
//!
//! [`Client::query`] sends a single [`Request`] frame, then consumes the
//! streamed response — pattern frames as they arrive, then the terminal
//! frame — and returns everything the server said: decoded patterns, the
//! run's [`MiningMetrics`], the server's [`ServerStats`], and the raw
//! pattern-frame payload bytes (which the integration tests use to prove
//! that warm cache hits are *byte-identical* to their cold counterpart).
//!
//! Transient failures — the server's explicit `Busy` overload answer and
//! a refused connection (daemon restarting) — can be retried with an
//! opt-in [`RetryPolicy`]: bounded attempts with jittered exponential
//! backoff. Every other failure (server-side errors, protocol errors,
//! mid-stream I/O) is returned immediately; retrying a query the server
//! *rejected* would never help, and retrying one that *started* could run
//! it twice.

use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpStream};

use desq_core::{MiningMetrics, Sequence};

use crate::proto::{read_frame, write_frame, Message, Request, ServerStats};
use crate::{ServeError, ServeResult};

/// The shared jittered-exponential backoff schedule, re-exported from its
/// canonical home — `desq_core::retry` — where the networked shuffle
/// transport's reconnect logic uses the same audited implementation.
pub use desq_core::retry::RetryPolicy;

/// True for the failures worth retrying: explicit overload and a refused
/// connection. Everything else is either permanent or already ran.
fn transient(e: &ServeError) -> bool {
    match e {
        ServeError::Busy { .. } => true,
        ServeError::Io(io) => io.kind() == std::io::ErrorKind::ConnectionRefused,
        _ => false,
    }
}

/// A handle on a `desq-serve` daemon address. Connections are established
/// per query (the protocol is one conversation per connection).
#[derive(Debug, Clone, Copy)]
pub struct Client {
    addr: SocketAddr,
    retry: Option<RetryPolicy>,
}

/// Everything one successful query returned.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The mined patterns with frequencies, in the server's stream order
    /// (discovery order — sort for the session's canonical ordering).
    pub patterns: Vec<(Sequence, u64)>,
    /// The mining run's uniform metrics.
    pub metrics: MiningMetrics,
    /// The server's cache and queue-wait accounting.
    pub stats: ServerStats,
    /// Concatenated payload bytes of every pattern frame, verbatim as
    /// they came off the wire.
    pub pattern_bytes: Vec<u8>,
}

impl Client {
    /// A client for the daemon at `addr` (no retries).
    pub fn new(addr: SocketAddr) -> Client {
        Client { addr, retry: None }
    }

    /// Opts into retrying transient failures under `policy`.
    pub fn with_retry(mut self, policy: RetryPolicy) -> Client {
        self.retry = Some(policy);
        self
    }

    /// Runs one query to completion, collecting the streamed patterns.
    ///
    /// Distinguishes its failures: [`ServeError::Busy`] when the server's
    /// admission cap rejected the connection, [`ServeError::Remote`] when
    /// the server rejected or aborted the query (unknown corpus, parse
    /// error, budget exhaustion, deadline, cancellation — carrying the
    /// server's [`desq_core::Error`] verbatim), [`ServeError::Io`] on
    /// transport failures. With [`with_retry`](Self::with_retry), `Busy`
    /// and connection-refused are retried under the policy before the
    /// last error is returned.
    pub fn query(&self, req: &Request) -> ServeResult<QueryOutcome> {
        let Some(policy) = self.retry else {
            return self.query_once(req);
        };
        let mut attempt = 0u32;
        loop {
            match self.query_once(req) {
                Err(e) if transient(&e) && attempt < policy.max_retries => {
                    std::thread::sleep(policy.backoff(attempt));
                    attempt += 1;
                }
                other => return other,
            }
        }
    }

    fn query_once(&self, req: &Request) -> ServeResult<QueryOutcome> {
        let stream = TcpStream::connect(self.addr)?;
        let _ = stream.set_nodelay(true);
        let mut writer = BufWriter::new(stream.try_clone()?);
        let mut reader = BufReader::new(stream);
        write_frame(&mut writer, &Message::Request(req.clone()))?;
        let mut patterns = Vec::new();
        let mut pattern_bytes = Vec::new();
        loop {
            let payload = read_frame(&mut reader)?;
            match Message::decode(&payload)? {
                Message::Patterns(batch) => {
                    pattern_bytes.extend_from_slice(&payload);
                    patterns.extend(batch);
                }
                Message::Metrics { mining, stats } => {
                    return Ok(QueryOutcome {
                        patterns,
                        metrics: mining,
                        stats,
                        pattern_bytes,
                    });
                }
                Message::Error(e) => return Err(ServeError::Remote(e)),
                Message::Busy { in_flight, cap } => {
                    return Err(ServeError::Busy { in_flight, cap })
                }
                Message::Request(_) => {
                    return Err(ServeError::Core(desq_core::Error::Decode(
                        "server sent a request frame".into(),
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The backoff schedule itself is tested at its home,
    // `desq_core::retry`; here only the client's transience predicate.

    #[test]
    fn only_busy_and_connection_refused_are_transient() {
        assert!(transient(&ServeError::Busy {
            in_flight: 1,
            cap: 1
        }));
        assert!(transient(&ServeError::Io(std::io::Error::from(
            std::io::ErrorKind::ConnectionRefused
        ))));
        assert!(!transient(&ServeError::Io(std::io::Error::from(
            std::io::ErrorKind::UnexpectedEof
        ))));
        assert!(!transient(&ServeError::Remote(desq_core::Error::Invalid(
            "unknown corpus".into()
        ))));
        assert!(!transient(&ServeError::Remote(
            desq_core::Error::DeadlineExceeded("50ms".into())
        )));
    }
}
