//! The framed wire protocol of the `desq-serve` daemon.
//!
//! # Frame format
//!
//! Every message travels as one *frame*:
//!
//! ```text
//! frame   := varint(payload_len) payload
//! payload := tag_byte message_body
//! ```
//!
//! The length prefix is a LEB128 varint ([`desq_core::codec::write_varint`])
//! and is capped at [`MAX_FRAME_LEN`] — a reader never allocates more than
//! that, and a hostile or corrupt length prefix is rejected before any
//! allocation. All integers inside message bodies are varints from the same
//! codec; item sequences use the canonical adaptive varint/delta encoding
//! ([`desq_core::codec::encode_item_seq`]) that the shuffle layer and the
//! interned counting path already share.
//!
//! # Messages
//!
//! | tag | message | body |
//! |-----|-----------|------|
//! | `1` | [`Message::Request`] | `version:u8, corpus:str, pexp:str, flags:u8 (bit0 = unanchored), sigma:varint, algo:u8, budget:varint, max_patterns:varint, workers:varint, deadline_millis:varint` |
//! | `2` | [`Message::Patterns`] | `count:varint`, then per pattern `item_seq, freq:varint` |
//! | `3` | [`Message::Metrics`] | [`MiningMetrics::encode`] body, then `cache_hit:u8, cache_hits:varint, cache_misses:varint, queue_wait_nanos:varint, compile_nanos:varint, timeouts:varint, panics:varint, cancels:varint` |
//! | `4` | [`Message::Error`] | `kind:u8, msg:str` (+ `pos:varint` for parse errors) |
//! | `5` | [`Message::Busy`] | `in_flight:varint, cap:varint` |
//!
//! `str` is `varint(len)` + UTF-8 bytes ([`desq_core::codec::write_str`]).
//! A *conversation* is one `Request` frame from the client, answered by
//! zero or more `Patterns` frames and exactly one terminal frame
//! (`Metrics` on success, `Error` or `Busy` otherwise), after which the
//! server closes the connection. `0` budget / `max_patterns` / `workers`
//! in a request mean "server default". The `version` byte must equal
//! [`PROTOCOL_VERSION`]; decoding rejects anything else so incompatible
//! peers fail fast with a clear message instead of mis-parsing.

use std::io::{Read, Write};

use desq_core::codec::{
    decode_item_seq, encode_item_seq, read_str, read_varint, write_str, write_varint,
};
use desq_core::{Error, MiningMetrics, Result, Sequence};

/// Protocol revision; bumped on any incompatible wire change.
/// (v2 added `deadline_millis` to requests and the failure counters to
/// the terminal metrics frame; v3 added the straggler counters —
/// `retried_tasks`, `peer_timeouts`, `max_task_nanos` — to the metrics
/// body and the peer error kinds 9/10; v4 added the FST optimizer size
/// counters — states/transitions before and after optimization — to both
/// the metrics body and the server stats.)
pub const PROTOCOL_VERSION: u8 = 4;

/// Upper bound on one frame's payload length (16 MiB). Large result sets
/// stream as many `Patterns` frames, so well-formed frames stay far below
/// this; the cap exists to reject hostile length prefixes outright.
pub const MAX_FRAME_LEN: usize = 16 << 20;

/// The algorithm selector of a request — the subset of the session's
/// `AlgorithmSpec` that mines a compiled pattern expression (and therefore
/// benefits from the server's FST cache), with all tuning left at the
/// session defaults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireAlgo {
    /// Sequential DESQ-DFS (the default).
    DesqDfs,
    /// Sequential DESQ-COUNT.
    DesqCount,
    /// Distributed D-SEQ with all enhancements on.
    DSeq,
    /// Distributed D-CAND with minimization and aggregation on.
    DCand,
}

impl WireAlgo {
    fn tag(self) -> u8 {
        match self {
            WireAlgo::DesqDfs => 0,
            WireAlgo::DesqCount => 1,
            WireAlgo::DSeq => 2,
            WireAlgo::DCand => 3,
        }
    }

    fn from_tag(tag: u8) -> Result<WireAlgo> {
        match tag {
            0 => Ok(WireAlgo::DesqDfs),
            1 => Ok(WireAlgo::DesqCount),
            2 => Ok(WireAlgo::DSeq),
            3 => Ok(WireAlgo::DCand),
            other => Err(Error::Decode(format!("unknown algorithm tag {other}"))),
        }
    }

    /// Parses the CLI spelling (`desq-dfs`, `desq-count`, `d-seq`,
    /// `d-cand`).
    pub fn parse(s: &str) -> Result<WireAlgo> {
        match s {
            "desq-dfs" => Ok(WireAlgo::DesqDfs),
            "desq-count" => Ok(WireAlgo::DesqCount),
            "d-seq" => Ok(WireAlgo::DSeq),
            "d-cand" => Ok(WireAlgo::DCand),
            other => Err(Error::Invalid(format!(
                "unknown algorithm {other:?} (expected desq-dfs, desq-count, d-seq or d-cand)"
            ))),
        }
    }

    /// Display name matching the session's algorithm names.
    pub fn name(self) -> &'static str {
        match self {
            WireAlgo::DesqDfs => "DESQ-DFS",
            WireAlgo::DesqCount => "DESQ-COUNT",
            WireAlgo::DSeq => "D-SEQ",
            WireAlgo::DCand => "D-CAND",
        }
    }
}

/// One mining query: which corpus, which constraint, which algorithm,
/// under which limits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Name of a corpus resident in the server's `CorpusStore`.
    pub corpus: String,
    /// The pattern expression (uncompiled — compilation happens, and is
    /// cached, server-side).
    pub pexp: String,
    /// Wrap the expression in uncaptured `.*` context before compiling
    /// (the within-sequence semantics of the paper's Tab. III constraints).
    pub unanchored: bool,
    /// Minimum support threshold σ.
    pub sigma: u64,
    /// Which algorithm to dispatch to.
    pub algo: WireAlgo,
    /// Per-sequence work budget; `0` means the server's default (which is
    /// also its ceiling — larger requests are rejected at admission).
    pub budget: u64,
    /// Result-pattern cap; `0` means the server's default ceiling.
    pub max_patterns: u64,
    /// Worker threads for the mining run; `0` means 1 (a deterministic
    /// single-worker run) — parallelism is opt-in, capped server-side.
    pub workers: u64,
    /// Wall-clock deadline for the query in milliseconds; `0` means none.
    /// The server clamps this to its own ceiling
    /// (`ServeLimits::max_deadline`): the effective deadline is the
    /// *minimum* of the two, and an over-deadline run ends with a terminal
    /// `DeadlineExceeded` error frame.
    pub deadline_millis: u64,
}

impl Request {
    /// An unanchored DESQ-DFS request with server-default limits — the
    /// common query shape.
    pub fn new(corpus: impl Into<String>, pexp: impl Into<String>, sigma: u64) -> Request {
        Request {
            corpus: corpus.into(),
            pexp: pexp.into(),
            unanchored: false,
            sigma,
            algo: WireAlgo::DesqDfs,
            budget: 0,
            max_patterns: 0,
            workers: 0,
            deadline_millis: 0,
        }
    }

    /// Switches to the paper's unanchored (`.*` context) semantics.
    pub fn unanchored(mut self) -> Request {
        self.unanchored = true;
        self
    }

    /// Selects the algorithm.
    pub fn with_algo(mut self, algo: WireAlgo) -> Request {
        self.algo = algo;
        self
    }

    /// Sets the per-sequence work budget.
    pub fn with_budget(mut self, budget: u64) -> Request {
        self.budget = budget;
        self
    }

    /// Sets the worker-thread count.
    pub fn with_workers(mut self, workers: u64) -> Request {
        self.workers = workers;
        self
    }

    /// Sets the wall-clock deadline in milliseconds (`0` = none).
    pub fn with_deadline_millis(mut self, deadline_millis: u64) -> Request {
        self.deadline_millis = deadline_millis;
        self
    }
}

/// Server-side accounting attached to the terminal metrics frame.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// True iff this query's FST came from the compile cache.
    pub cache_hit: bool,
    /// Global FST-cache hits since server start (including this query).
    pub cache_hits: u64,
    /// Global FST-cache misses since server start (including this query).
    pub cache_misses: u64,
    /// Nanoseconds between accepting the connection and the start of
    /// mining — admission, request decode and (on a miss) FST compilation.
    pub queue_wait_nanos: u64,
    /// Nanoseconds spent compiling the pattern expression for this query
    /// (`0` on a cache hit — the skipped work the cache pays for).
    pub compile_nanos: u64,
    /// Connections evicted by a socket read/write timeout plus queries
    /// that ended in `DeadlineExceeded`, since server start.
    pub timeouts: u64,
    /// Queries that ended in `WorkerPanicked` (a contained panic — the
    /// server kept serving), since server start.
    pub panics: u64,
    /// Queries cancelled before completion (client disconnected
    /// mid-stream, drain shutdown), since server start.
    pub cancels: u64,
    /// States of this query's FST before the optimizer's
    /// determinization/minimization passes (0 for algorithms without a
    /// compiled FST).
    pub fst_states_before: u64,
    /// States of the (cached, optimized) FST the query actually mined
    /// with.
    pub fst_states_after: u64,
    /// Transitions of this query's FST before optimization.
    pub fst_transitions_before: u64,
    /// Transitions of the FST the query actually mined with.
    pub fst_transitions_after: u64,
}

/// Everything that can travel in one frame.
// The Metrics variant dwarfs the others, but a `Message` exists only for
// the moment between decode and dispatch (one per query, never stored in
// bulk) — boxing its fields would cost more in construction/match noise
// than the enum width ever could.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Client → server: one query (see [`Request`]).
    Request(Request),
    /// Server → client: a batch of result patterns with frequencies,
    /// streamed in discovery order while mining runs.
    Patterns(Vec<(Sequence, u64)>),
    /// Server → client, terminal on success: the run's uniform
    /// [`MiningMetrics`] plus the server's [`ServerStats`].
    Metrics {
        /// The mining run's uniform metrics.
        mining: MiningMetrics,
        /// Cache and queue-wait accounting.
        stats: ServerStats,
    },
    /// Server → client, terminal on failure: the rejection or abort
    /// reason, carried as the workspace error type.
    Error(Error),
    /// Server → client, terminal on overload: the admission cap was hit.
    Busy {
        /// Connections in flight when this one was rejected.
        in_flight: u64,
        /// The configured cap.
        cap: u64,
    },
}

const TAG_REQUEST: u8 = 1;
const TAG_PATTERNS: u8 = 2;
const TAG_METRICS: u8 = 3;
const TAG_ERROR: u8 = 4;
const TAG_BUSY: u8 = 5;

fn encode_error(e: &Error, buf: &mut Vec<u8>) {
    match e {
        Error::Parse { msg, pos } => {
            buf.push(0);
            write_str(buf, msg);
            write_varint(buf, *pos as u64);
        }
        Error::UnknownItem(msg) => {
            buf.push(1);
            write_str(buf, msg);
        }
        Error::CyclicHierarchy(msg) => {
            buf.push(2);
            write_str(buf, msg);
        }
        Error::ResourceExhausted(msg) => {
            buf.push(3);
            write_str(buf, msg);
        }
        Error::Decode(msg) => {
            buf.push(4);
            write_str(buf, msg);
        }
        Error::Invalid(msg) => {
            buf.push(5);
            write_str(buf, msg);
        }
        Error::DeadlineExceeded(msg) => {
            buf.push(6);
            write_str(buf, msg);
        }
        Error::Cancelled(msg) => {
            buf.push(7);
            write_str(buf, msg);
        }
        Error::WorkerPanicked(msg) => {
            buf.push(8);
            write_str(buf, msg);
        }
        Error::PeerUnreachable(msg) => {
            buf.push(9);
            write_str(buf, msg);
        }
        Error::PeerTimedOut(msg) => {
            buf.push(10);
            write_str(buf, msg);
        }
    }
}

fn decode_error(buf: &mut &[u8]) -> Result<Error> {
    let (&kind, rest) = buf
        .split_first()
        .ok_or_else(|| Error::Decode("error frame: missing kind".into()))?;
    *buf = rest;
    let msg = read_str(buf)?.to_string();
    Ok(match kind {
        0 => Error::Parse {
            msg,
            pos: read_varint(buf)? as usize,
        },
        1 => Error::UnknownItem(msg),
        2 => Error::CyclicHierarchy(msg),
        3 => Error::ResourceExhausted(msg),
        4 => Error::Decode(msg),
        5 => Error::Invalid(msg),
        6 => Error::DeadlineExceeded(msg),
        7 => Error::Cancelled(msg),
        8 => Error::WorkerPanicked(msg),
        9 => Error::PeerUnreachable(msg),
        10 => Error::PeerTimedOut(msg),
        other => return Err(Error::Decode(format!("unknown error kind {other}"))),
    })
}

impl Message {
    /// Appends this message's payload (tag byte + body) to `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Message::Request(r) => {
                buf.push(TAG_REQUEST);
                buf.push(PROTOCOL_VERSION);
                write_str(buf, &r.corpus);
                write_str(buf, &r.pexp);
                buf.push(u8::from(r.unanchored));
                write_varint(buf, r.sigma);
                buf.push(r.algo.tag());
                write_varint(buf, r.budget);
                write_varint(buf, r.max_patterns);
                write_varint(buf, r.workers);
                write_varint(buf, r.deadline_millis);
            }
            Message::Patterns(patterns) => {
                buf.push(TAG_PATTERNS);
                write_varint(buf, patterns.len() as u64);
                for (items, freq) in patterns {
                    encode_item_seq(items, buf);
                    write_varint(buf, *freq);
                }
            }
            Message::Metrics { mining, stats } => {
                buf.push(TAG_METRICS);
                mining.encode(buf);
                buf.push(u8::from(stats.cache_hit));
                write_varint(buf, stats.cache_hits);
                write_varint(buf, stats.cache_misses);
                write_varint(buf, stats.queue_wait_nanos);
                write_varint(buf, stats.compile_nanos);
                write_varint(buf, stats.timeouts);
                write_varint(buf, stats.panics);
                write_varint(buf, stats.cancels);
                write_varint(buf, stats.fst_states_before);
                write_varint(buf, stats.fst_states_after);
                write_varint(buf, stats.fst_transitions_before);
                write_varint(buf, stats.fst_transitions_after);
            }
            Message::Error(e) => {
                buf.push(TAG_ERROR);
                encode_error(e, buf);
            }
            Message::Busy { in_flight, cap } => {
                buf.push(TAG_BUSY);
                write_varint(buf, *in_flight);
                write_varint(buf, *cap);
            }
        }
    }

    /// Decodes one frame payload. Rejects unknown tags, version mismatch,
    /// truncated bodies and trailing garbage — a payload either decodes to
    /// exactly one message or errors.
    pub fn decode(payload: &[u8]) -> Result<Message> {
        let mut buf = payload;
        let (&tag, rest) = buf
            .split_first()
            .ok_or_else(|| Error::Decode("empty frame payload".into()))?;
        buf = rest;
        let msg = match tag {
            TAG_REQUEST => {
                let (&version, rest) = buf
                    .split_first()
                    .ok_or_else(|| Error::Decode("request: missing version".into()))?;
                buf = rest;
                if version != PROTOCOL_VERSION {
                    return Err(Error::Decode(format!(
                        "protocol version mismatch: peer speaks v{version}, \
                         this build speaks v{PROTOCOL_VERSION}"
                    )));
                }
                let corpus = read_str(&mut buf)?.to_string();
                let pexp = read_str(&mut buf)?.to_string();
                let (&flags, rest) = buf
                    .split_first()
                    .ok_or_else(|| Error::Decode("request: missing flags".into()))?;
                buf = rest;
                let sigma = read_varint(&mut buf)?;
                let (&algo, rest) = buf
                    .split_first()
                    .ok_or_else(|| Error::Decode("request: missing algorithm".into()))?;
                buf = rest;
                Message::Request(Request {
                    corpus,
                    pexp,
                    unanchored: flags & 1 == 1,
                    sigma,
                    algo: WireAlgo::from_tag(algo)?,
                    budget: read_varint(&mut buf)?,
                    max_patterns: read_varint(&mut buf)?,
                    workers: read_varint(&mut buf)?,
                    deadline_millis: read_varint(&mut buf)?,
                })
            }
            TAG_PATTERNS => {
                let count = read_varint(&mut buf)? as usize;
                // Each pattern needs ≥ 2 payload bytes (empty item seq +
                // frequency); reject hostile counts before allocating.
                if count > buf.len() {
                    return Err(Error::Decode(format!(
                        "patterns frame: count {count} exceeds payload"
                    )));
                }
                let mut patterns = Vec::with_capacity(count);
                for _ in 0..count {
                    let mut items = Vec::new();
                    decode_item_seq(&mut buf, &mut items)?;
                    let freq = read_varint(&mut buf)?;
                    patterns.push((items, freq));
                }
                Message::Patterns(patterns)
            }
            TAG_METRICS => {
                let mining = MiningMetrics::decode(&mut buf)?;
                let (&cache_hit, rest) = buf
                    .split_first()
                    .ok_or_else(|| Error::Decode("metrics frame: missing cache flag".into()))?;
                buf = rest;
                Message::Metrics {
                    mining,
                    stats: ServerStats {
                        cache_hit: cache_hit != 0,
                        cache_hits: read_varint(&mut buf)?,
                        cache_misses: read_varint(&mut buf)?,
                        queue_wait_nanos: read_varint(&mut buf)?,
                        compile_nanos: read_varint(&mut buf)?,
                        timeouts: read_varint(&mut buf)?,
                        panics: read_varint(&mut buf)?,
                        cancels: read_varint(&mut buf)?,
                        fst_states_before: read_varint(&mut buf)?,
                        fst_states_after: read_varint(&mut buf)?,
                        fst_transitions_before: read_varint(&mut buf)?,
                        fst_transitions_after: read_varint(&mut buf)?,
                    },
                }
            }
            TAG_ERROR => Message::Error(decode_error(&mut buf)?),
            TAG_BUSY => Message::Busy {
                in_flight: read_varint(&mut buf)?,
                cap: read_varint(&mut buf)?,
            },
            other => return Err(Error::Decode(format!("unknown frame tag {other}"))),
        };
        if !buf.is_empty() {
            return Err(Error::Decode(format!(
                "frame payload has {} trailing bytes after message",
                buf.len()
            )));
        }
        Ok(msg)
    }
}

/// Writes one frame (length prefix + payload) and flushes.
///
/// Returns `InvalidData` if the encoded message exceeds [`MAX_FRAME_LEN`] —
/// callers control this by batching (the server flushes pattern frames
/// every few hundred patterns).
pub fn write_frame(w: &mut impl Write, msg: &Message) -> std::io::Result<()> {
    let mut payload = Vec::new();
    msg.encode(&mut payload);
    if payload.len() > MAX_FRAME_LEN {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!(
                "frame payload of {} bytes exceeds MAX_FRAME_LEN",
                payload.len()
            ),
        ));
    }
    let mut prefix = Vec::with_capacity(5);
    write_varint(&mut prefix, payload.len() as u64);
    w.write_all(&prefix)?;
    w.write_all(&payload)?;
    w.flush()
}

/// Reads one frame's payload bytes (the length prefix is consumed and
/// validated, not returned).
///
/// Fails with `UnexpectedEof` on a closed or truncated stream and with
/// `InvalidData` on a malformed or oversized ([`MAX_FRAME_LEN`]) length
/// prefix — the length is validated *before* any payload allocation.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Vec<u8>> {
    let mut len = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        if shift >= 64 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "frame length varint overflows",
            ));
        }
        len |= u64::from(byte[0] & 0x7f) << shift;
        if byte[0] & 0x80 == 0 {
            break;
        }
        shift += 7;
    }
    if len > MAX_FRAME_LEN as u64 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME_LEN ({MAX_FRAME_LEN})"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: &Message) {
        let mut framed = Vec::new();
        write_frame(&mut framed, msg).unwrap();
        let payload = read_frame(&mut framed.as_slice()).unwrap();
        assert_eq!(&Message::decode(&payload).unwrap(), msg);
    }

    #[test]
    fn every_message_kind_roundtrips() {
        roundtrip(&Message::Request(
            Request::new("nyt", "(ENTITY^ VERB+ ENTITY^)", 10)
                .unanchored()
                .with_algo(WireAlgo::DSeq)
                .with_budget(1_000_000)
                .with_workers(4)
                .with_deadline_millis(30_000),
        ));
        roundtrip(&Message::Patterns(vec![
            (vec![1, 2, 3], 17),
            (vec![], 1),
            (vec![u32::MAX], u64::MAX),
        ]));
        roundtrip(&Message::Metrics {
            mining: MiningMetrics::sequential(123, 4, 5, 6),
            stats: ServerStats {
                cache_hit: true,
                cache_hits: 7,
                cache_misses: 2,
                queue_wait_nanos: 999,
                compile_nanos: 0,
                timeouts: 3,
                panics: 1,
                cancels: 2,
                fst_states_before: 14,
                fst_states_after: 3,
                fst_transitions_before: 21,
                fst_transitions_after: 8,
            },
        });
        roundtrip(&Message::Error(Error::Parse {
            msg: "unexpected ']'".into(),
            pos: 7,
        }));
        roundtrip(&Message::Error(Error::ResourceExhausted("budget".into())));
        roundtrip(&Message::Error(Error::DeadlineExceeded("100ms".into())));
        roundtrip(&Message::Error(Error::Cancelled("drain".into())));
        roundtrip(&Message::Error(Error::WorkerPanicked("task 7".into())));
        roundtrip(&Message::Error(Error::PeerUnreachable(
            "127.0.0.1:7777".into(),
        )));
        roundtrip(&Message::Error(Error::PeerTimedOut("worker 2".into())));
        roundtrip(&Message::Busy {
            in_flight: 8,
            cap: 8,
        });
    }

    #[test]
    fn version_mismatch_is_a_clear_error() {
        let mut payload = Vec::new();
        Message::Request(Request::new("c", "p", 1)).encode(&mut payload);
        payload[1] = PROTOCOL_VERSION + 1;
        let err = Message::decode(&payload).unwrap_err();
        assert!(
            matches!(err, Error::Decode(ref m) if m.contains("version")),
            "{err}"
        );
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut payload = Vec::new();
        Message::Busy {
            in_flight: 1,
            cap: 2,
        }
        .encode(&mut payload);
        payload.push(0);
        assert!(Message::decode(&payload).is_err());
    }

    #[test]
    fn oversized_length_prefix_rejected_before_allocation() {
        let mut framed = Vec::new();
        write_varint(&mut framed, MAX_FRAME_LEN as u64 + 1);
        let err = read_frame(&mut framed.as_slice()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        // A wildly hostile prefix (full u64) must be rejected too, not
        // allocated.
        let mut framed = Vec::new();
        write_varint(&mut framed, u64::MAX);
        assert!(read_frame(&mut framed.as_slice()).is_err());
    }

    #[test]
    fn algo_cli_spellings_parse() {
        for (s, algo) in [
            ("desq-dfs", WireAlgo::DesqDfs),
            ("desq-count", WireAlgo::DesqCount),
            ("d-seq", WireAlgo::DSeq),
            ("d-cand", WireAlgo::DCand),
        ] {
            assert_eq!(WireAlgo::parse(s).unwrap(), algo);
            assert!(!algo.name().is_empty());
        }
        assert!(WireAlgo::parse("bogosort").is_err());
    }
}
