//! # desq-serve
//!
//! Mining-as-a-service: a long-lived daemon that amortizes the expensive
//! parts of a [`desq::session::MiningSession`] across many cheap queries.
//!
//! The paper frames pattern expressions as a *query language* over a
//! sequence database — exactly the shape of a server workload. A
//! standalone `MiningSession::run` pays full corpus materialization and
//! pexp → FST compilation on every call; this crate keeps both resident:
//!
//! * [`store::CorpusStore`] loads each corpus **once** into shared
//!   immutable state (`Arc<Dictionary>` + `Arc<SequenceDb>`) that every
//!   concurrent query borrows;
//! * the store's **FST compile cache** memoizes compiled constraints keyed
//!   by `(corpus, canonical pattern expression, anchoring)`, with global
//!   hit/miss counters surfaced in every response;
//! * [`server::Server`] runs concurrent sessions against the shared state
//!   under **admission control** ([`server::ServeLimits`]): a global
//!   in-flight cap answered with an explicit [`proto::Message::Busy`]
//!   frame — never unbounded queueing — plus server-side ceilings on the
//!   per-request work budget and pattern cap;
//! * [`proto`] defines the length-prefixed frame protocol over TCP,
//!   reusing the `desq_core::codec` varint/delta primitives for requests
//!   and for the streamed response (incremental pattern frames, then a
//!   terminal metrics frame carrying the run's
//!   [`desq_core::MiningMetrics`] plus cache and queue-wait stats);
//! * [`client::Client`] is the thin blocking counterpart used by the
//!   `desq-serve query` subcommand and the integration tests.
//!
//! ```no_run
//! use desq_serve::client::Client;
//! use desq_serve::proto::Request;
//! use desq_serve::server::Server;
//! use desq_serve::store::CorpusStore;
//!
//! let mut store = CorpusStore::new();
//! store.load_spec("toy", "toy")?;
//! let handle = Server::new(store).spawn("127.0.0.1:0")?;
//!
//! let client = Client::new(handle.addr());
//! let out = client.query(&Request::new("toy", desq_core::toy::PATTERN, 2))?;
//! assert_eq!(out.patterns.len(), 3);
//! assert!(!out.stats.cache_hit); // cold: this query compiled the FST
//! let again = client.query(&Request::new("toy", desq_core::toy::PATTERN, 2))?;
//! assert!(again.stats.cache_hit); // warm: compile skipped
//! handle.shutdown();
//! # Ok::<(), desq_serve::ServeError>(())
//! ```
//!
//! See the "Serving" section of `docs/ARCHITECTURE.md` for the store /
//! cache / protocol diagram and the admission-control semantics, and the
//! "Failure domains" section for timeouts, deadlines, panic containment
//! and drain shutdown.

// A daemon must not die on a recoverable condition: non-test code in this
// crate handles every fallible path explicitly (CI runs clippy with
// `-D warnings`, making this a hard gate).
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use std::fmt;

pub mod client;
pub mod proto;
pub mod server;
pub mod store;

/// Errors of the serving layer, distinguishing local failures from
/// server-reported ones.
#[derive(Debug)]
pub enum ServeError {
    /// A socket-level failure (connect, read, write, unexpected EOF).
    Io(std::io::Error),
    /// A local failure: malformed frame bytes, an unencodable message.
    Core(desq_core::Error),
    /// The server rejected or aborted the query and said why — admission
    /// failures (unknown corpus, bad pexp, over-limit budget) arrive
    /// before any pattern frame, mining failures (budget exhaustion) may
    /// arrive mid-stream as the terminal frame.
    Remote(desq_core::Error),
    /// The server's global in-flight cap was reached; retry later. This is
    /// the explicit overload answer — the daemon never queues unboundedly.
    Busy {
        /// Connections the server was serving when it rejected this one.
        in_flight: u64,
        /// The server's configured cap.
        cap: u64,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Core(e) => write!(f, "protocol error: {e}"),
            ServeError::Remote(e) => write!(f, "server rejected the query: {e}"),
            ServeError::Busy { in_flight, cap } => {
                write!(f, "server busy: {in_flight} queries in flight (cap {cap})")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Core(e) | ServeError::Remote(e) => Some(e),
            ServeError::Busy { .. } => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> ServeError {
        ServeError::Io(e)
    }
}

impl From<desq_core::Error> for ServeError {
    fn from(e: desq_core::Error) -> ServeError {
        ServeError::Core(e)
    }
}

/// Result alias of the serving layer.
pub type ServeResult<T> = std::result::Result<T, ServeError>;
