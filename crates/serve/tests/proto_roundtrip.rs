//! Property tests for the frame codec: arbitrary messages survive
//! encode → frame → read → decode unchanged, every strict payload prefix
//! is rejected (no panic, no partial decode), truncated frames error at
//! the transport layer, and hostile length prefixes are refused before
//! any allocation.

use desq_core::{Error, MiningMetrics};
use desq_serve::proto::{
    read_frame, write_frame, Message, Request, ServerStats, WireAlgo, MAX_FRAME_LEN,
};
use proptest::collection;
use proptest::prelude::*;

/// Short strings over a mixed alphabet: ASCII printable plus a couple of
/// multi-byte code points, so the UTF-8 path of `write_str`/`read_str` is
/// exercised (including the empty string).
fn any_string() -> impl Strategy<Value = String> {
    collection::vec(
        prop_oneof![
            (32u32..127).prop_map(|c| char::from_u32(c).unwrap()),
            Just('σ'),
            Just('→'),
            Just('𝄞'),
        ],
        0..12,
    )
    .prop_map(|chars| chars.into_iter().collect())
}

fn any_algo() -> impl Strategy<Value = WireAlgo> {
    prop_oneof![
        Just(WireAlgo::DesqDfs),
        Just(WireAlgo::DesqCount),
        Just(WireAlgo::DSeq),
        Just(WireAlgo::DCand),
    ]
}

/// Varint-relevant magnitudes: small values, values around the 7-bit
/// group boundaries, and the extremes.
fn any_u64() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..3,
        100u64..200,
        (1u64 << 28) - 2..(1 << 28) + 2,
        u64::MAX - 2..=u64::MAX,
    ]
}

fn any_request() -> impl Strategy<Value = Message> {
    (
        (any_string(), any_string(), 0u64..2, any_u64(), any_algo()),
        (any_u64(), any_u64(), any_u64(), any_u64()),
    )
        .prop_map(
            |(
                (corpus, pexp, unanchored, sigma, algo),
                (budget, max_patterns, workers, deadline_millis),
            )| {
                Message::Request(Request {
                    corpus,
                    pexp,
                    unanchored: unanchored == 1,
                    sigma,
                    algo,
                    budget,
                    max_patterns,
                    workers,
                    deadline_millis,
                })
            },
        )
}

fn any_patterns() -> impl Strategy<Value = Message> {
    collection::vec((collection::vec(0u32..=u32::MAX, 0..8), any_u64()), 0..6)
        .prop_map(Message::Patterns)
}

fn any_metrics() -> impl Strategy<Value = Message> {
    (
        (any_u64(), any_u64(), any_u64(), any_u64(), any_u64()),
        (
            collection::vec(any_u64(), 0..4),
            collection::vec(any_u64(), 0..4),
        ),
        (0u64..2, any_u64(), any_u64(), any_u64(), any_u64()),
        (any_u64(), any_u64(), any_u64()),
        (any_u64(), any_u64(), any_u64()),
    )
        .prop_map(
            |(
                (wall, map, reduce, inputs, shuffle_bytes),
                (reducer_bytes, worker_nanos),
                (cache_hit, hits, misses, queue_wait, compile),
                (timeouts, panics, cancels),
                (retried, peer_timeouts, max_task),
            )| {
                Message::Metrics {
                    mining: MiningMetrics {
                        wall_nanos: wall,
                        map_nanos: map,
                        reduce_nanos: reduce,
                        input_sequences: inputs,
                        emitted_records: map ^ reduce,
                        shuffle_records: wall.wrapping_add(map),
                        shuffle_payloads: inputs,
                        shuffle_bytes,
                        reducer_bytes,
                        output_records: inputs ^ wall,
                        workers: map,
                        worker_nanos,
                        tasks: reduce,
                        steals: wall,
                        retried_tasks: retried,
                        peer_timeouts,
                        max_task_nanos: max_task,
                        cancelled: wall & 1 == 1,
                        fst_states_before: hits ^ reduce,
                        fst_states_after: misses,
                        fst_transitions_before: queue_wait ^ map,
                        fst_transitions_after: compile,
                    },
                    stats: ServerStats {
                        cache_hit: cache_hit == 1,
                        cache_hits: hits,
                        cache_misses: misses,
                        queue_wait_nanos: queue_wait,
                        compile_nanos: compile,
                        timeouts,
                        panics,
                        cancels,
                        fst_states_before: timeouts ^ hits,
                        fst_states_after: panics,
                        fst_transitions_before: cancels ^ misses,
                        fst_transitions_after: max_task,
                    },
                }
            },
        )
}

fn any_error() -> impl Strategy<Value = Message> {
    (0u8..11, any_string(), any_u64()).prop_map(|(kind, msg, pos)| {
        Message::Error(match kind {
            0 => Error::Parse {
                msg,
                pos: pos as usize,
            },
            1 => Error::UnknownItem(msg),
            2 => Error::CyclicHierarchy(msg),
            3 => Error::ResourceExhausted(msg),
            4 => Error::Decode(msg),
            5 => Error::Invalid(msg),
            6 => Error::DeadlineExceeded(msg),
            7 => Error::Cancelled(msg),
            8 => Error::WorkerPanicked(msg),
            9 => Error::PeerUnreachable(msg),
            _ => Error::PeerTimedOut(msg),
        })
    })
}

fn any_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        any_request(),
        any_patterns(),
        any_metrics(),
        any_error(),
        (any_u64(), any_u64()).prop_map(|(in_flight, cap)| Message::Busy { in_flight, cap }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode → frame → read_frame → decode is the identity.
    #[test]
    fn messages_roundtrip_through_frames(msg in any_message()) {
        let mut framed = Vec::new();
        write_frame(&mut framed, &msg).expect("encode");
        let mut stream = framed.as_slice();
        let payload = read_frame(&mut stream).expect("read");
        prop_assert!(stream.is_empty(), "frame left {} bytes unread", stream.len());
        let decoded = Message::decode(&payload).expect("decode");
        prop_assert_eq!(decoded, msg);
    }

    /// A payload either decodes completely or errors: every strict prefix
    /// is rejected (frames carry exactly one message, so a prefix always
    /// cuts a field) and it never panics.
    #[test]
    fn truncated_payloads_are_errors_not_panics(msg in any_message(), cut in 0u64..10_000) {
        let mut payload = Vec::new();
        msg.encode(&mut payload);
        let cut = (cut as usize) % payload.len(); // payload is never empty (tag byte)
        prop_assert!(
            Message::decode(&payload[..cut]).is_err(),
            "prefix of {cut}/{} bytes decoded",
            payload.len()
        );
    }

    /// A frame cut anywhere — inside the length prefix or the payload —
    /// fails `read_frame` with `UnexpectedEof` instead of blocking or
    /// returning short data.
    #[test]
    fn truncated_frames_are_transport_errors(msg in any_message(), cut in 0u64..10_000) {
        let mut framed = Vec::new();
        write_frame(&mut framed, &msg).expect("encode");
        let cut = (cut as usize) % framed.len();
        let err = read_frame(&mut &framed[..cut]).expect_err("truncated frame must error");
        prop_assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    /// Hostile length prefixes above [`MAX_FRAME_LEN`] are rejected before
    /// the payload allocation, for the whole range up to `u64::MAX`.
    #[test]
    fn oversized_length_prefixes_are_rejected(len in MAX_FRAME_LEN as u64 + 1..=u64::MAX) {
        let mut framed = Vec::new();
        desq_core::codec::write_varint(&mut framed, len);
        framed.extend_from_slice(&[0u8; 64]); // even with bytes behind it
        let err = read_frame(&mut framed.as_slice()).expect_err("oversized length must error");
        prop_assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    /// Flipping the tag byte to an unknown value is a decode error, so new
    /// message kinds can be added behind a version bump without silent
    /// misinterpretation.
    #[test]
    fn unknown_tags_are_rejected(msg in any_message(), tag in 6u8..=u8::MAX) {
        let mut payload = Vec::new();
        msg.encode(&mut payload);
        payload[0] = tag;
        prop_assert!(Message::decode(&payload).is_err());
    }
}
