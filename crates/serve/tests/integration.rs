//! End-to-end daemon tests on localhost ephemeral ports: warm-cache
//! byte-identity, concurrent clients vs the sequential oracle, explicit
//! Busy under overload, admission-time rejections, cancel-on-disconnect,
//! and the client's retry policy.

use std::io::{BufReader, BufWriter};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use desq::session::{AlgorithmSpec, MiningSession};
use desq_core::{toy, Error, Sequence};
use desq_serve::client::{Client, RetryPolicy};
use desq_serve::proto::{read_frame, write_frame, Message, Request, WireAlgo};
use desq_serve::server::{ServeLimits, Server};
use desq_serve::store::CorpusStore;
use desq_serve::ServeError;

fn toy_server(limits: ServeLimits) -> desq_serve::server::ServerHandle {
    let mut store = CorpusStore::new();
    store.load_spec("toy", "toy").unwrap();
    Server::new(store)
        .with_limits(limits)
        .spawn("127.0.0.1:0")
        .unwrap()
}

fn sorted(mut patterns: Vec<(Sequence, u64)>) -> Vec<(Sequence, u64)> {
    patterns.sort_unstable();
    patterns
}

#[test]
fn warm_query_hits_the_cache_and_is_byte_identical() {
    let handle = toy_server(ServeLimits::default());
    let client = Client::new(handle.addr());
    let req = Request::new("toy", toy::PATTERN, 2);

    let cold = client.query(&req).unwrap();
    assert!(!cold.stats.cache_hit, "first query must compile");
    assert!(cold.stats.compile_nanos > 0);
    assert_eq!(cold.stats.cache_misses, 1);

    let warm = client.query(&req).unwrap();
    assert!(warm.stats.cache_hit, "second identical query must hit");
    assert_eq!(warm.stats.compile_nanos, 0, "warm query skips compilation");
    assert!(warm.stats.cache_hits > 0);
    // Same patterns, bit for bit: the streamed pattern frames of the warm
    // query are byte-identical to the cold ones.
    assert_eq!(warm.pattern_bytes, cold.pattern_bytes);
    assert!(!warm.pattern_bytes.is_empty());

    // And both match the in-process session oracle (paper result: 3
    // patterns).
    let fx = toy::fixture();
    let oracle = MiningSession::builder()
        .dictionary(fx.dict)
        .database(fx.db)
        .pattern(toy::PATTERN)
        .sigma(2)
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(oracle.patterns.len(), 3);
    assert_eq!(sorted(cold.patterns), oracle.patterns);
    assert_eq!(cold.metrics.output_records, 3);
    assert!(cold.stats.queue_wait_nanos > 0);
    handle.shutdown();
}

#[test]
fn concurrent_clients_match_the_sequential_oracle() {
    // One shared corpus, four clients with distinct constraints (plus one
    // repeated), all in flight together against one CorpusStore.
    let (dict, db) = desq_datagen::nyt_like(&desq_datagen::NytConfig::new(800));
    let mut store = CorpusStore::new();
    store.insert("nyt", dict.clone(), db.clone());
    let handle = Server::new(store).spawn("127.0.0.1:0").unwrap();
    let client = Client::new(handle.addr());
    let (dict, db) = (Arc::new(dict), Arc::new(db));

    let constraints: Vec<(String, WireAlgo)> = vec![
        (desq_dist::patterns::n2().expr, WireAlgo::DesqDfs),
        (desq_dist::patterns::n3().expr, WireAlgo::DesqDfs),
        (desq_dist::patterns::n4().expr, WireAlgo::DesqCount),
        (desq_dist::patterns::n2().expr, WireAlgo::DSeq),
    ];
    let outcomes: Vec<Vec<(Sequence, u64)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = constraints
            .iter()
            .map(|(expr, algo)| {
                let client = &client;
                scope.spawn(move || {
                    let req = Request::new("nyt", expr.clone(), 4)
                        .unanchored()
                        .with_algo(*algo);
                    sorted(client.query(&req).unwrap().patterns)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for ((expr, _), served) in constraints.iter().zip(&outcomes) {
        let oracle = MiningSession::builder()
            .dictionary(dict.clone())
            .database(db.clone())
            .pattern_unanchored(expr.clone())
            .sigma(4)
            .algorithm(AlgorithmSpec::DesqDfs)
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert!(!oracle.patterns.is_empty(), "oracle empty for {expr}");
        assert_eq!(served, &oracle.patterns, "mismatch for {expr}");
    }
    // Two queries used the same (corpus, pexp, anchoring): exactly one
    // compile between them, whichever thread got there first.
    let q = client
        .query(&Request::new("nyt", desq_dist::patterns::n2().expr, 4).unanchored())
        .unwrap();
    assert!(q.stats.cache_hit);
    assert_eq!(q.stats.cache_misses, 3, "n2/n3/n4 each compiled once");
    handle.shutdown();
}

#[test]
fn overload_gets_an_explicit_busy_frame() {
    let handle = toy_server(ServeLimits {
        max_inflight: 1,
        ..ServeLimits::default()
    });
    let client = Client::new(handle.addr());

    // Occupy the single slot with a connection that never sends a request.
    let holder = TcpStream::connect(handle.addr()).unwrap();
    // The admission decision happens at accept: wait until the holder is
    // actually in flight, then the next query must bounce.
    std::thread::sleep(std::time::Duration::from_millis(50));
    let err = client
        .query(&Request::new("toy", toy::PATTERN, 2))
        .unwrap_err();
    match err {
        ServeError::Busy { in_flight, cap } => {
            assert_eq!((in_flight, cap), (1, 1));
        }
        other => panic!("expected Busy, got {other}"),
    }

    // Releasing the slot makes the same query succeed (the handler notices
    // the holder's EOF asynchronously — poll briefly).
    drop(holder);
    let mut served = None;
    for _ in 0..100 {
        match client.query(&Request::new("toy", toy::PATTERN, 2)) {
            Ok(out) => {
                served = Some(out);
                break;
            }
            Err(ServeError::Busy { .. }) => {
                std::thread::sleep(std::time::Duration::from_millis(10))
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert_eq!(served.expect("slot never freed").patterns.len(), 3);
    handle.shutdown();
}

#[test]
fn admission_rejects_bad_requests_before_mining() {
    let handle = toy_server(ServeLimits {
        max_budget: 1000,
        ..ServeLimits::default()
    });
    let client = Client::new(handle.addr());

    let unknown = client
        .query(&Request::new("nope", toy::PATTERN, 2))
        .unwrap_err();
    match unknown {
        ServeError::Remote(Error::Invalid(msg)) => {
            assert!(msg.contains("unknown corpus"), "{msg}");
            assert!(msg.contains("toy"), "should list resident corpora: {msg}");
        }
        other => panic!("expected Remote(Invalid), got {other}"),
    }

    let bad_pexp = client.query(&Request::new("toy", "([", 2)).unwrap_err();
    assert!(
        matches!(bad_pexp, ServeError::Remote(Error::Parse { .. })),
        "expected Remote(Parse), got {bad_pexp}"
    );

    let over_budget = client
        .query(&Request::new("toy", toy::PATTERN, 2).with_budget(100_000))
        .unwrap_err();
    match over_budget {
        ServeError::Remote(Error::Invalid(msg)) => {
            assert!(msg.contains("ceiling"), "{msg}")
        }
        other => panic!("expected Remote(Invalid), got {other}"),
    }

    let zero_sigma = client
        .query(&Request::new("toy", toy::PATTERN, 0))
        .unwrap_err();
    assert!(
        matches!(zero_sigma, ServeError::Remote(Error::Invalid(_))),
        "expected Remote(Invalid), got {zero_sigma}"
    );

    // None of the rejections left mining state behind: a good query still
    // works and is the cache's first compile.
    let ok = client.query(&Request::new("toy", toy::PATTERN, 2)).unwrap();
    assert_eq!(ok.patterns.len(), 3);
    handle.shutdown();
}

#[test]
fn disconnect_mid_stream_releases_the_slot_and_cancels_the_run() {
    // A big-enough corpus that the query streams many pattern frames
    // (batch = 1 → one frame per pattern, so the server notices the dead
    // peer within a couple of writes).
    let (dict, db) = desq_datagen::nyt_like(&desq_datagen::NytConfig::new(800));
    let mut store = CorpusStore::new();
    store.insert("nyt", dict, db);
    let handle = Server::new(store)
        .with_limits(ServeLimits {
            max_inflight: 1,
            batch: 1,
            ..ServeLimits::default()
        })
        .spawn("127.0.0.1:0")
        .unwrap();

    // Raw client: send the request, read exactly one pattern frame, hang
    // up mid-stream.
    let req = Request::new("nyt", desq_dist::patterns::n2().expr, 1).unanchored();
    {
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let mut writer = BufWriter::new(stream.try_clone().unwrap());
        let mut reader = BufReader::new(stream);
        write_frame(&mut writer, &Message::Request(req)).unwrap();
        let payload = read_frame(&mut reader).unwrap();
        assert!(
            matches!(Message::decode(&payload).unwrap(), Message::Patterns(_)),
            "expected the stream to have started"
        );
        // Drop both halves: the server's next write fails.
    }

    // The abort must release the single admission slot promptly — well
    // before a σ=1 full mine over 800 sequences would run to completion —
    // and must be accounted as a cancel/timeout, proving the run was
    // tripped by the failed write rather than mined to the end.
    let client = Client::new(handle.addr());
    let deadline = Instant::now() + Duration::from_secs(20);
    let outcome = loop {
        match client.query(&Request::new("nyt", desq_dist::patterns::n2().expr, 4).unanchored()) {
            Ok(out) => break out,
            Err(ServeError::Busy { .. }) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    };
    assert!(
        outcome.stats.cancels + outcome.stats.timeouts >= 1,
        "the aborted query must be counted (cancels={}, timeouts={})",
        outcome.stats.cancels,
        outcome.stats.timeouts
    );
    handle.shutdown();
}

#[test]
fn retry_policy_rides_out_busy_until_the_slot_frees() {
    let handle = toy_server(ServeLimits {
        max_inflight: 1,
        ..ServeLimits::default()
    });
    // Occupy the single slot with a connection that never sends a request.
    let holder = TcpStream::connect(handle.addr()).unwrap();
    std::thread::sleep(Duration::from_millis(50));

    // Without a policy the query bounces immediately.
    let plain = Client::new(handle.addr());
    assert!(matches!(
        plain.query(&Request::new("toy", toy::PATTERN, 2)),
        Err(ServeError::Busy { .. })
    ));

    // With one, the same query retries through the Busy answers and lands
    // once the holder goes away.
    let retrying = plain.with_retry(RetryPolicy {
        max_retries: 40,
        base_delay: Duration::from_millis(5),
        max_delay: Duration::from_millis(40),
        ..RetryPolicy::default()
    });
    let query = std::thread::spawn(move || retrying.query(&Request::new("toy", toy::PATTERN, 2)));
    std::thread::sleep(Duration::from_millis(100));
    drop(holder);
    let outcome = query.join().unwrap().expect("retries must land");
    assert_eq!(outcome.patterns.len(), 3);
    handle.shutdown();
}

#[test]
fn retry_policy_bounds_connection_refused_attempts() {
    // An address nothing listens on: bind an ephemeral port, then free it.
    let addr = {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap()
    };
    let policy = RetryPolicy {
        max_retries: 2,
        base_delay: Duration::from_millis(10),
        max_delay: Duration::from_millis(40),
        ..RetryPolicy::default()
    };
    let client = Client::new(addr).with_retry(policy);
    let t0 = Instant::now();
    let err = client
        .query(&Request::new("toy", toy::PATTERN, 2))
        .unwrap_err();
    assert!(
        matches!(&err, ServeError::Io(io) if io.kind() == std::io::ErrorKind::ConnectionRefused),
        "expected ConnectionRefused after bounded retries, got {err}"
    );
    // Two backoffs slept: ≥ base + 2·base (exponential, pre-jitter).
    assert!(
        t0.elapsed() >= Duration::from_millis(30),
        "backoff sleeps must actually happen ({:?})",
        t0.elapsed()
    );
}

#[test]
fn budget_exhaustion_reaches_the_client_as_resource_exhausted() {
    let handle = toy_server(ServeLimits::default());
    let client = Client::new(handle.addr());
    let err = client
        .query(
            &Request::new("toy", toy::PATTERN, 2)
                .with_algo(WireAlgo::DesqCount)
                .with_budget(2),
        )
        .unwrap_err();
    assert!(
        matches!(err, ServeError::Remote(Error::ResourceExhausted(_))),
        "expected Remote(ResourceExhausted), got {err}"
    );
    handle.shutdown();
}
