//! Chaos suite: deterministic fault injection against a live daemon.
//!
//! Only built with `--features failpoints`. Each test arms named
//! failpoints ([`desq_core::fault`]) inside the serving/mining stack and
//! asserts the failure-domain promises of `server.rs`: an injected panic
//! is contained to its connection, a stalled client is evicted by the
//! read timeout, an over-deadline query errors within twice its deadline,
//! and drain shutdown cancels in-flight sessions inside the grace period.
#![cfg(feature = "failpoints")]

use std::io::BufReader;
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use desq_core::fault::{self, FailAction, FailSpec};
use desq_core::{toy, Error};
use desq_serve::client::Client;
use desq_serve::proto::{read_frame, Message, Request};
use desq_serve::server::{ServeLimits, Server, ServerHandle};
use desq_serve::store::CorpusStore;
use desq_serve::ServeError;

/// The failpoint registry is process-global; chaos tests take this lock
/// so their site configurations never overlap.
static CHAOS: Mutex<()> = Mutex::new(());

fn chaos_guard() -> std::sync::MutexGuard<'static, ()> {
    let guard = CHAOS.lock().unwrap_or_else(|p| p.into_inner());
    fault::clear_all();
    guard
}

/// Default limits, but allowing 2-worker requests regardless of the host's
/// visible parallelism (several tests inject faults into the scheduler
/// path, which only runs with `workers > 1`).
fn two_worker_limits() -> ServeLimits {
    ServeLimits {
        max_workers: 2,
        ..ServeLimits::default()
    }
}

fn toy_server(limits: ServeLimits) -> ServerHandle {
    let mut store = CorpusStore::new();
    store.load_spec("toy", "toy").unwrap();
    Server::new(store)
        .with_limits(limits)
        .spawn("127.0.0.1:0")
        .unwrap()
}

fn nyt_server(limits: ServeLimits) -> ServerHandle {
    let mut store = CorpusStore::new();
    store.load_spec("nyt", "nyt:400").unwrap();
    Server::new(store)
        .with_limits(limits)
        .spawn("127.0.0.1:0")
        .unwrap()
}

fn nyt_request(sigma: u64) -> Request {
    Request::new("nyt", desq_dist::patterns::n2().expr, sigma).unanchored()
}

/// (a) A panicking mining task yields a terminal `WorkerPanicked` error
/// frame to that client — and the server answers the next query normally.
#[test]
fn injected_task_panic_is_contained_to_its_connection() {
    let _guard = chaos_guard();
    let handle = toy_server(two_worker_limits());
    let client = Client::new(handle.addr());

    fault::configure(
        "sched::task_run",
        FailSpec::once_after(0, FailAction::Panic),
    );
    let err = client
        .query(&Request::new("toy", toy::PATTERN, 2).with_workers(2))
        .unwrap_err();
    match err {
        ServeError::Remote(Error::WorkerPanicked(msg)) => {
            assert!(msg.contains("sched::task_run"), "{msg}");
        }
        other => panic!("expected Remote(WorkerPanicked), got {other}"),
    }
    assert!(fault::hits("sched::task_run") >= 1, "failpoint never fired");

    // The panic was contained: the very next query succeeds and reports
    // the contained panic in the global counter.
    fault::clear_all();
    let ok = client
        .query(&Request::new("toy", toy::PATTERN, 2).with_workers(2))
        .unwrap();
    assert_eq!(ok.patterns.len(), 3);
    assert!(ok.stats.panics >= 1, "contained panic must be counted");
    handle.shutdown();
}

/// (a, variant) A panic *outside* mining — between the run and the
/// terminal frame — is also caught at the connection boundary.
#[test]
fn injected_reply_panic_is_contained_to_its_connection() {
    let _guard = chaos_guard();
    let handle = toy_server(ServeLimits::default());
    let client = Client::new(handle.addr());

    fault::configure(
        "serve::before_reply",
        FailSpec::once_after(0, FailAction::Panic),
    );
    let err = client
        .query(&Request::new("toy", toy::PATTERN, 2))
        .unwrap_err();
    assert!(
        matches!(err, ServeError::Remote(Error::WorkerPanicked(ref m)) if m.contains("serve::before_reply")),
        "expected Remote(WorkerPanicked), got {err}"
    );

    fault::clear_all();
    assert_eq!(
        client
            .query(&Request::new("toy", toy::PATTERN, 2))
            .unwrap()
            .patterns
            .len(),
        3
    );
    handle.shutdown();
}

/// An injected compile failure surfaces as that query's error and leaves
/// the cache serving (the poison-recovery satellite, exercised end to
/// end).
#[test]
fn injected_compile_error_does_not_brick_the_cache() {
    let _guard = chaos_guard();
    let handle = toy_server(ServeLimits::default());
    let client = Client::new(handle.addr());

    fault::configure("store::compile", FailSpec::once_after(0, FailAction::Err));
    let err = client
        .query(&Request::new("toy", toy::PATTERN, 2))
        .unwrap_err();
    assert!(
        matches!(err, ServeError::Remote(Error::Invalid(ref m)) if m.contains("store::compile")),
        "expected the injected compile error, got {err}"
    );

    // Same expression again: compiles cleanly now (the failpoint fired
    // once), proving the failed attempt left no broken cache state.
    let ok = client.query(&Request::new("toy", toy::PATTERN, 2)).unwrap();
    assert_eq!(ok.patterns.len(), 3);
    assert!(
        !ok.stats.cache_hit,
        "failed compile must not populate cache"
    );
    handle.shutdown();
}

/// (b) A stalled client — connected, never sends a request — is evicted
/// by the read timeout: it receives an explicit terminal frame, its
/// admission slot is released, and the next query gets no `Busy`.
#[test]
fn stalled_client_is_evicted_by_the_read_timeout() {
    let _guard = chaos_guard();
    let handle = toy_server(ServeLimits {
        max_inflight: 1,
        read_timeout: Some(Duration::from_millis(100)),
        ..ServeLimits::default()
    });
    let client = Client::new(handle.addr());

    let holder = TcpStream::connect(handle.addr()).unwrap();
    std::thread::sleep(Duration::from_millis(30));
    assert!(
        matches!(
            client.query(&Request::new("toy", toy::PATTERN, 2)),
            Err(ServeError::Busy { .. })
        ),
        "the stalled connection must hold the only slot at first"
    );

    // The eviction frees the slot without the holder ever disconnecting.
    let deadline = Instant::now() + Duration::from_secs(5);
    let outcome = loop {
        match client.query(&Request::new("toy", toy::PATTERN, 2)) {
            Ok(out) => break out,
            Err(ServeError::Busy { .. }) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    };
    assert_eq!(outcome.patterns.len(), 3);
    assert!(outcome.stats.timeouts >= 1, "eviction must be counted");

    // The evicted holder got an explicit terminal error frame, not a
    // silent close.
    let mut reader = BufReader::new(holder);
    let payload = read_frame(&mut reader).expect("eviction frame");
    assert!(
        matches!(
            Message::decode(&payload).unwrap(),
            Message::Error(Error::DeadlineExceeded(_))
        ),
        "the stalled client is told why it was evicted"
    );
    handle.shutdown();
}

/// (c) A query past its wall-clock deadline returns `DeadlineExceeded`
/// within 2× the deadline, even though each mining task is artificially
/// slowed far beyond it.
#[test]
fn over_deadline_query_errors_within_twice_the_deadline() {
    let _guard = chaos_guard();
    let handle = nyt_server(two_worker_limits());
    let client = Client::new(handle.addr());

    // Warm the FST cache so the measured query spends its wall-clock
    // budget in mining, not compilation.
    client.query(&nyt_request(4)).unwrap();

    // Every scheduler task now dawdles 40 ms; the σ=1 run would take many
    // times the deadline. The cooperative checkpoint between tasks must
    // trip the 200 ms deadline no later than one task-length after it.
    fault::configure(
        "sched::task_run",
        FailSpec::always(FailAction::Delay(Duration::from_millis(40))),
    );
    let deadline_ms = 200u64;
    let t0 = Instant::now();
    let err = client
        .query(
            &nyt_request(1)
                .with_workers(2)
                .with_deadline_millis(deadline_ms),
        )
        .unwrap_err();
    let elapsed = t0.elapsed();
    fault::clear_all();
    assert!(
        matches!(err, ServeError::Remote(Error::DeadlineExceeded(_))),
        "expected Remote(DeadlineExceeded), got {err}"
    );
    assert!(
        elapsed >= Duration::from_millis(deadline_ms),
        "cannot trip before the deadline ({elapsed:?})"
    );
    assert!(
        elapsed <= Duration::from_millis(2 * deadline_ms),
        "DeadlineExceeded must arrive within 2x the deadline ({elapsed:?})"
    );

    // The server itself is fine afterwards.
    assert!(!client.query(&nyt_request(4)).unwrap().patterns.is_empty());
    handle.shutdown();
}

/// (d) Drain shutdown cancels the in-flight session (the client receives
/// a terminal `Cancelled` frame) and returns within the grace period.
#[test]
fn drain_shutdown_cancels_in_flight_sessions_within_grace() {
    let _guard = chaos_guard();
    let grace = Duration::from_secs(2);
    let handle = nyt_server(ServeLimits {
        drain_grace: grace,
        ..two_worker_limits()
    });
    let client = Client::new(handle.addr());
    client.query(&nyt_request(4)).unwrap(); // warm the cache

    // A σ=1 run whose every task dawdles: effectively unbounded without
    // cancellation.
    fault::configure(
        "sched::task_run",
        FailSpec::always(FailAction::Delay(Duration::from_millis(30))),
    );
    let slow = std::thread::spawn(move || client.query(&nyt_request(1).with_workers(2)));
    std::thread::sleep(Duration::from_millis(200)); // let it get in flight

    let t0 = Instant::now();
    handle.shutdown();
    let elapsed = t0.elapsed();
    fault::clear_all();
    assert!(
        elapsed <= grace,
        "drain must finish within the grace period ({elapsed:?})"
    );

    let err = slow.join().unwrap().unwrap_err();
    assert!(
        matches!(err, ServeError::Remote(Error::Cancelled(_))),
        "the drained client is told its query was cancelled, got {err}"
    );
}
