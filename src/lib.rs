//! # desq
//!
//! Facade crate for the Rust reproduction of *Scalable Frequent Sequence
//! Mining with Flexible Subsequence Constraints* (ICDE 2019): distributed
//! frequent sequence mining with DESQ-style flexible subsequence constraints
//! via the **D-SEQ** and **D-CAND** algorithms.
//!
//! This crate re-exports the workspace crates under one roof:
//!
//! * [`core`] — the DESQ model: dictionaries/hierarchies, pattern
//!   expressions, finite-state transducers, candidate generation.
//! * [`miner`] — sequential miners (DESQ-DFS, DESQ-COUNT, PrefixSpan,
//!   gap-constrained mining).
//! * [`bsp`] — the thread-backed bulk-synchronous-parallel engine with
//!   byte-accurate shuffle accounting.
//! * [`dist`] — the paper's contribution: D-SEQ, D-CAND and the NAÏVE /
//!   SEMI-NAÏVE baselines, plus the constraint library of Tab. III.
//! * [`baselines`] — specialized scalable miners (LASH/MG-FSM-style,
//!   MLlib-style PrefixSpan) used in the paper's comparisons.
//! * [`datagen`] — synthetic analogs of the NYT / AMZN / AMZN-F / CW50
//!   corpora.
//!
//! See `examples/quickstart.rs` for a five-minute tour and DESIGN.md for the
//! system inventory.

pub use desq_baselines as baselines;
pub use desq_bsp as bsp;
pub use desq_core as core;
pub use desq_datagen as datagen;
pub use desq_dist as dist;
pub use desq_miner as miner;
