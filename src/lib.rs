//! # desq
//!
//! Facade crate for the Rust reproduction of *Scalable Frequent Sequence
//! Mining with Flexible Subsequence Constraints* (ICDE 2019): distributed
//! frequent sequence mining with DESQ-style flexible subsequence constraints
//! via the **D-SEQ** and **D-CAND** algorithms.
//!
//! **Start with [`session`]** — the unified mining API. A
//! [`MiningSession`] is built once from a dictionary, a database, a
//! pattern expression and an [`AlgorithmSpec`], and every algorithm in the
//! workspace (DESQ-DFS, DESQ-COUNT, PrefixSpan, the gap miner, NAÏVE,
//! SEMI-NAÏVE, D-SEQ, D-CAND, plus the LASH/MLlib baselines) runs through
//! it and returns the same uniform [`MiningResult`]:
//!
//! ```
//! use desq::session::{AlgorithmSpec, MiningSession};
//!
//! let fx = desq::core::toy::fixture(); // the paper's Fig. 2 example
//! let session = MiningSession::builder()
//!     .dictionary(fx.dict)
//!     .database(fx.db)
//!     .pattern(desq::core::toy::PATTERN)
//!     .sigma(2)
//!     .algorithm(AlgorithmSpec::d_seq())
//!     .build()?;
//! let result = session.run()?;
//! assert_eq!(result.patterns.len(), 3);
//! # Ok::<(), desq::core::Error>(())
//! ```
//!
//! The workspace crates underneath, re-exported under one roof:
//!
//! * [`core`] — the DESQ model: dictionaries/hierarchies, pattern
//!   expressions, finite-state transducers, candidate generation — and the
//!   [`Miner`] trait / [`MiningResult`] substrate of the session API.
//! * [`miner`] — sequential miners (DESQ-DFS, DESQ-COUNT, PrefixSpan,
//!   gap-constrained mining).
//! * [`bsp`] — the thread-backed bulk-synchronous-parallel engine with
//!   byte-accurate shuffle accounting.
//! * [`dist`] — the paper's contribution: D-SEQ, D-CAND and the NAÏVE /
//!   SEMI-NAÏVE baselines, plus the constraint library of Tab. III.
//! * [`baselines`] — specialized scalable miners (LASH/MG-FSM-style,
//!   MLlib-style PrefixSpan) used in the paper's comparisons.
//! * [`datagen`] — synthetic analogs of the NYT / AMZN / AMZN-F / CW50
//!   corpora.
//!
//! Each algorithm crate exposes its implementations behind the session via
//! [`Miner`]-trait adapters in an `algo` module. The historical free
//! functions (`desq_count`, `desq_dfs`, `d_seq`, `d_cand`, `naive`,
//! `semi_naive`, `lash`, `mllib_prefixspan`) were removed after their
//! one-release deprecation window; `docs/MIGRATION.md` in the repository
//! root maps each old call to its session-builder equivalent.
//!
//! See `examples/quickstart.rs` for a five-minute tour, DESIGN.md for the
//! system inventory, and `docs/ARCHITECTURE.md` for the module map of the
//! flat mining substrate and the work-stealing scheduler.

pub mod session;

pub use desq_baselines as baselines;
pub use desq_bsp as bsp;
pub use desq_core as core;
pub use desq_datagen as datagen;
pub use desq_dist as dist;
pub use desq_miner as miner;

pub use desq_core::mining::{
    ExecutionPolicy, Limits, Miner, MiningContext, MiningMetrics, MiningResult,
};
pub use desq_core::OptLevel;
pub use session::{AlgorithmSpec, MiningSession, MiningSessionBuilder, PatternStream};
