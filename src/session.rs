//! The unified mining API: one builder, one request shape, one result
//! shape — for all eight algorithms (plus the LASH/MLlib baselines).
//!
//! A [`MiningSession`] is built once from a [`Dictionary`], a
//! [`SequenceDb`], a subsequence constraint (a pattern-expression string or
//! a pre-compiled [`Fst`]) and an [`AlgorithmSpec`]; every input is
//! validated exactly once at [`MiningSessionBuilder::build`] time. Running
//! the session returns the workspace-wide uniform
//! [`MiningResult`] `{ patterns, metrics }` regardless of which algorithm
//! executes — sequential miners report wall-time and work counts,
//! distributed ones additionally report shuffle volume and balance.
//!
//! ```
//! use desq::session::{AlgorithmSpec, MiningSession};
//!
//! let fx = desq::core::toy::fixture();
//! let session = MiningSession::builder()
//!     .dictionary(fx.dict)
//!     .database(fx.db)
//!     .pattern(desq::core::toy::PATTERN)
//!     .sigma(2)
//!     .algorithm(AlgorithmSpec::DesqDfs)
//!     .build()?;
//! let result = session.run()?;
//! assert_eq!(result.patterns.len(), 3); // a1 b, a1 A b, a1 a1 b
//!
//! // The same session can dispatch to any other algorithm — results are
//! // identical by the master correctness property.
//! let distributed = session.with_algorithm(AlgorithmSpec::d_seq())?.run()?;
//! assert_eq!(distributed.patterns, result.patterns);
//! assert!(distributed.metrics.shuffle_bytes > 0);
//! # Ok::<(), desq::core::Error>(())
//! ```
//!
//! For large result sets, [`MiningSession::stream`] yields patterns through
//! a [`PatternStream`] iterator without materializing and sorting the
//! result eagerly (DESQ-DFS streams incrementally as the search tree is
//! explored; other algorithms stream their result out after computing it).

use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use desq_baselines::{LashConfig, MllibConfig};
use desq_core::mining::{
    panic_message, CancelToken, ExecutionPolicy, Limits, Miner, MiningContext, MiningMetrics,
    MiningResult,
};
use desq_core::{Dictionary, Error, Fst, OptLevel, PatEx, Result, Sequence, SequenceDb};
use desq_dist::{DCandConfig, DSeqConfig};
use desq_miner::{LocalMiner, MinerConfig};

pub use desq_core::mining::DEFAULT_BUDGET;

/// Which algorithm a [`MiningSession`] dispatches to.
///
/// The FST-based variants (`DesqDfs`, `DesqCount`, `Naive`, `SemiNaive`,
/// `DSeq`, `DCand`) require the session to carry a subsequence constraint;
/// the traditional-constraint variants (`PrefixSpan`, `GapMiner`, `Lash`,
/// `Mllib`) encode their constraint in the spec itself. Thresholds and
/// budgets always come from the session — the `sigma` fields inside the
/// wrapped configs are overridden.
#[derive(Debug, Clone, Copy)]
pub enum AlgorithmSpec {
    /// Sequential DESQ-DFS (pattern growth over projected databases).
    DesqDfs,
    /// Sequential DESQ-COUNT (candidate generation + counting; the
    /// brute-force reference).
    DesqCount,
    /// Classic PrefixSpan: all subsequences of length ≤ `max_len`,
    /// arbitrary gaps, no hierarchy (the `T1(σ, λ)` semantics).
    PrefixSpan {
        /// Maximum pattern length λ.
        max_len: usize,
    },
    /// Gap-constrained pattern growth: the `T2(σ, γ, λ)` /
    /// `T3(σ, γ, λ)` semantics.
    GapMiner {
        /// Maximum gap γ between consecutive matched positions.
        gamma: usize,
        /// Maximum pattern length λ.
        max_len: usize,
        /// Minimum pattern length (2 for the paper's T2/T3).
        min_len: usize,
        /// Generalize along the hierarchy (T3) or not (T2).
        generalize: bool,
    },
    /// Distributed NAÏVE baseline (ships raw candidates).
    Naive,
    /// Distributed SEMI-NAÏVE baseline (ships frequency-filtered
    /// candidates).
    SemiNaive,
    /// Distributed D-SEQ (ships rewritten input sequences; Sec. V).
    DSeq(DSeqConfig),
    /// Distributed D-CAND (ships candidate NFAs; Sec. VI).
    DCand(DCandConfig),
    /// The LASH/MG-FSM-style specialized baseline (max gap, max length,
    /// optional hierarchy).
    Lash(LashConfig),
    /// The MLlib-style distributed PrefixSpan (max length only).
    Mllib {
        /// Maximum pattern length λ.
        max_len: usize,
    },
}

impl AlgorithmSpec {
    /// Full D-SEQ with all enhancements on (the common case).
    pub fn d_seq() -> AlgorithmSpec {
        AlgorithmSpec::DSeq(DSeqConfig::new(1))
    }

    /// Full D-CAND with minimization and aggregation on (the common case).
    pub fn d_cand() -> AlgorithmSpec {
        AlgorithmSpec::DCand(DCandConfig::new(1))
    }

    /// Display name of the selected algorithm.
    pub fn name(&self) -> &'static str {
        match self {
            AlgorithmSpec::DesqDfs => "DESQ-DFS",
            AlgorithmSpec::DesqCount => "DESQ-COUNT",
            AlgorithmSpec::PrefixSpan { .. } => "PrefixSpan",
            AlgorithmSpec::GapMiner { .. } => "GapMiner",
            AlgorithmSpec::Naive => "NAIVE",
            AlgorithmSpec::SemiNaive => "SEMI-NAIVE",
            AlgorithmSpec::DSeq(_) => "D-SEQ",
            AlgorithmSpec::DCand(_) => "D-CAND",
            AlgorithmSpec::Lash(cfg) => {
                if cfg.generalize {
                    "LASH"
                } else {
                    "MG-FSM"
                }
            }
            AlgorithmSpec::Mllib { .. } => "MLlib-PrefixSpan",
        }
    }

    /// True iff this algorithm mines a compiled pattern expression (and the
    /// session therefore must carry one).
    pub fn needs_fst(&self) -> bool {
        matches!(
            self,
            AlgorithmSpec::DesqDfs
                | AlgorithmSpec::DesqCount
                | AlgorithmSpec::Naive
                | AlgorithmSpec::SemiNaive
                | AlgorithmSpec::DSeq(_)
                | AlgorithmSpec::DCand(_)
        )
    }

    /// Instantiates the [`Miner`] implementation behind this spec.
    pub fn miner(&self) -> Box<dyn Miner + Send + Sync> {
        match *self {
            AlgorithmSpec::DesqDfs => Box::new(desq_miner::algo::DesqDfs),
            AlgorithmSpec::DesqCount => Box::new(desq_miner::algo::DesqCount),
            AlgorithmSpec::PrefixSpan { max_len } => {
                Box::new(desq_miner::algo::PrefixSpan { max_len })
            }
            AlgorithmSpec::GapMiner {
                gamma,
                max_len,
                min_len,
                generalize,
            } => Box::new(desq_miner::algo::GapMiner {
                gamma,
                max_len,
                min_len,
                generalize,
            }),
            AlgorithmSpec::Naive => Box::new(desq_dist::algo::Naive::naive()),
            AlgorithmSpec::SemiNaive => Box::new(desq_dist::algo::Naive::semi_naive()),
            AlgorithmSpec::DSeq(cfg) => Box::new(desq_dist::algo::DSeq(cfg)),
            AlgorithmSpec::DCand(cfg) => Box::new(desq_dist::algo::DCand(cfg)),
            AlgorithmSpec::Lash(cfg) => Box::new(desq_baselines::algo::Lash(cfg)),
            AlgorithmSpec::Mllib { max_len } => {
                Box::new(desq_baselines::algo::Mllib(MllibConfig::new(1, max_len)))
            }
        }
    }
}

/// The subsequence constraint as given to the builder.
#[derive(Clone)]
enum PatternSource {
    /// A pattern expression, compiled as written (anchored).
    Expr(String),
    /// A pattern expression wrapped in uncaptured `.*` context before
    /// compilation (the semantics of the paper's Tab. III constraints).
    Unanchored(String),
    /// A pre-compiled FST.
    Compiled(Arc<Fst>),
}

/// Builder for a [`MiningSession`]. See the [module docs](self) for an
/// end-to-end example.
#[derive(Clone, Default)]
pub struct MiningSessionBuilder {
    dict: Option<Arc<Dictionary>>,
    db: Option<Arc<SequenceDb>>,
    pattern: Option<PatternSource>,
    algorithm: Option<AlgorithmSpec>,
    sigma: Option<u64>,
    limits: Limits,
    workers: Option<usize>,
    partitions: Option<usize>,
    reducers: Option<usize>,
    exec: ExecutionPolicy,
    cancel: Option<CancelToken>,
    opt_level: OptLevel,
}

/// Default worker count: the machine's parallelism, capped at 8 — the
/// single workspace-wide convention (the bench harness delegates here).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8)
}

impl MiningSessionBuilder {
    /// Sets the frozen dictionary (accepts an owned value or an `Arc`).
    pub fn dictionary(mut self, dict: impl Into<Arc<Dictionary>>) -> Self {
        self.dict = Some(dict.into());
        self
    }

    /// Sets the input database (accepts an owned value or an `Arc`).
    pub fn database(mut self, db: impl Into<Arc<SequenceDb>>) -> Self {
        self.db = Some(db.into());
        self
    }

    /// Sets the subsequence constraint as a pattern expression, compiled
    /// exactly as written (write explicit `.*` context if the constraint
    /// should match anywhere in the input, or use
    /// [`pattern_unanchored`](Self::pattern_unanchored)).
    pub fn pattern(mut self, expr: impl Into<String>) -> Self {
        self.pattern = Some(PatternSource::Expr(expr.into()));
        self
    }

    /// Sets the subsequence constraint as a pattern expression that is
    /// wrapped in uncaptured `.*` context before compilation — the
    /// within-sequence matching semantics of the paper's Tab. III
    /// constraints.
    pub fn pattern_unanchored(mut self, expr: impl Into<String>) -> Self {
        self.pattern = Some(PatternSource::Unanchored(expr.into()));
        self
    }

    /// Sets a pre-compiled constraint (accepts an owned [`Fst`] or an
    /// `Arc`). The FST must have been compiled against the same dictionary
    /// the session uses.
    pub fn fst(mut self, fst: impl Into<Arc<Fst>>) -> Self {
        self.pattern = Some(PatternSource::Compiled(fst.into()));
        self
    }

    /// Sets the minimum support threshold σ (required, must be positive).
    pub fn sigma(mut self, sigma: u64) -> Self {
        self.sigma = Some(sigma);
        self
    }

    /// Selects the algorithm (defaults to [`AlgorithmSpec::DesqDfs`]).
    pub fn algorithm(mut self, algorithm: AlgorithmSpec) -> Self {
        self.algorithm = Some(algorithm);
        self
    }

    /// Sets all resource limits at once.
    pub fn limits(mut self, limits: Limits) -> Self {
        self.limits = limits;
        self
    }

    /// Sets the per-sequence work budget (defaults to [`DEFAULT_BUDGET`]).
    pub fn budget(mut self, budget: usize) -> Self {
        self.limits.budget = budget;
        self
    }

    /// Caps the number of result patterns; exceeding the cap is an error,
    /// never a silent truncation.
    pub fn max_patterns(mut self, max_patterns: usize) -> Self {
        self.limits.max_patterns = max_patterns;
        self
    }

    /// Sets the worker-thread count for distributed algorithms (defaults
    /// to the machine's parallelism, capped at 8).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Sets the number of map partitions ("machines"; defaults to the
    /// worker count).
    pub fn partitions(mut self, partitions: usize) -> Self {
        self.partitions = Some(partitions);
        self
    }

    /// Sets the number of shuffle buckets (reduce tasks; defaults to the
    /// worker count).
    pub fn reducers(mut self, reducers: usize) -> Self {
        self.reducers = Some(reducers);
        self
    }

    /// Sets a wall-clock deadline for each run (defaults to unbounded).
    /// Every execution layer polls the deadline cooperatively at task
    /// granularity; an expired run aborts with
    /// [`Error::DeadlineExceeded`].
    pub fn deadline(mut self, deadline: std::time::Duration) -> Self {
        self.limits.deadline = Some(deadline);
        self
    }

    /// Adopts an externally owned cancellation token: tripping it (from
    /// any thread) aborts this session's runs at the next task boundary
    /// with [`Error::Cancelled`]. When the
    /// session also carries a [`deadline`](Self::deadline), the deadline
    /// is armed on this token at the first run — a token's deadline arms
    /// at most once, so callers that reuse a session across runs should
    /// supply a fresh token per run (the `desq-serve` daemon does).
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Selects the execution path for algorithms with several strategies
    /// (defaults to [`ExecutionPolicy::Auto`]). Today this steers
    /// DESQ-DFS's choice between its flat-table and lean counting paths;
    /// streaming runs always use the flat path regardless (the lean path
    /// cannot stream).
    pub fn execution_policy(mut self, exec: ExecutionPolicy) -> Self {
        self.exec = exec;
        self
    }

    /// Selects the FST optimization level pattern expressions are compiled
    /// at (defaults to [`OptLevel::Full`]; [`OptLevel::None`] keeps the
    /// un-optimized oracle automaton for A/B comparisons). Pre-compiled
    /// [`fst`](Self::fst) sources are used as-is — their level was chosen
    /// at compile time.
    pub fn opt_level(mut self, level: OptLevel) -> Self {
        self.opt_level = level;
        self
    }

    /// Dry-run check: parses and compiles the builder's pattern expression
    /// against its dictionary *without* building (or running) a session.
    ///
    /// Only the dictionary and the pattern are required — no database, σ or
    /// algorithm. Returns the compiled [`Fst`], which can be fed back into
    /// [`fst`](Self::fst) on this or any other builder over the same
    /// dictionary, so the compile work is paid exactly once. This is the
    /// admission-time validation hook of the `desq-serve` daemon: a bad
    /// pattern expression is rejected with a clean [`Error::Parse`] /
    /// [`Error::UnknownItem`] before any mining starts, instead of failing
    /// mid-stream. A pre-compiled [`fst`](Self::fst) source is returned
    /// as-is (nothing to validate).
    pub fn compile_only(&self) -> Result<Arc<Fst>> {
        let dict = self.dict.as_ref().ok_or_else(|| {
            Error::Invalid("a dictionary is required to compile: call .dictionary()".into())
        })?;
        match &self.pattern {
            Some(PatternSource::Expr(expr)) => Ok(Arc::new(Fst::compile_with(
                &PatEx::parse(expr)?,
                dict,
                self.opt_level,
            )?)),
            Some(PatternSource::Unanchored(expr)) => Ok(Arc::new(Fst::compile_with(
                &PatEx::parse(expr)?.unanchored(),
                dict,
                self.opt_level,
            )?)),
            Some(PatternSource::Compiled(fst)) => Ok(fst.clone()),
            None => Err(Error::Invalid(
                "a pattern is required to compile: call .pattern(), \
                 .pattern_unanchored() or .fst()"
                    .into(),
            )),
        }
    }

    /// Validates the whole request once and produces the session.
    ///
    /// Errors with [`Error::Invalid`] on: missing dictionary/database,
    /// missing or zero σ, zero budget/max_patterns/workers/partitions, a
    /// pattern expression that fails to parse or compile, or an FST-based
    /// algorithm without a constraint.
    pub fn build(self) -> Result<MiningSession> {
        let dict = self
            .dict
            .ok_or_else(|| Error::Invalid("a dictionary is required: call .dictionary()".into()))?;
        let db = self.db.ok_or_else(|| {
            Error::Invalid("a sequence database is required: call .database()".into())
        })?;
        let sigma = self.sigma.ok_or_else(|| {
            Error::Invalid("a support threshold is required: call .sigma(σ) with σ > 0".into())
        })?;
        let algorithm = self.algorithm.unwrap_or(AlgorithmSpec::DesqDfs);
        let fst = match self.pattern {
            Some(PatternSource::Expr(expr)) => Some(Arc::new(Fst::compile_with(
                &PatEx::parse(&expr)?,
                &dict,
                self.opt_level,
            )?)),
            Some(PatternSource::Unanchored(expr)) => Some(Arc::new(Fst::compile_with(
                &PatEx::parse(&expr)?.unanchored(),
                &dict,
                self.opt_level,
            )?)),
            Some(PatternSource::Compiled(fst)) => Some(fst),
            None => None,
        };
        let workers = self.workers.unwrap_or_else(default_workers);
        let session = MiningSession {
            dict,
            db,
            fst,
            algorithm,
            sigma,
            limits: self.limits,
            workers,
            partitions: self.partitions.unwrap_or(workers),
            reducers: self.reducers.unwrap_or(workers),
            exec: self.exec,
            cancel: self.cancel,
        };
        session.validate()?;
        Ok(session)
    }
}

/// A validated mining request, ready to [`run`](MiningSession::run) (any
/// number of times) or [`stream`](MiningSession::stream).
///
/// Sessions share their dictionary, database and FST through `Arc`s, so
/// cloning a session — or deriving a variant via
/// [`with_algorithm`](MiningSession::with_algorithm) /
/// [`with_sigma`](MiningSession::with_sigma) — is cheap.
#[derive(Clone)]
pub struct MiningSession {
    dict: Arc<Dictionary>,
    db: Arc<SequenceDb>,
    fst: Option<Arc<Fst>>,
    algorithm: AlgorithmSpec,
    sigma: u64,
    limits: Limits,
    workers: usize,
    partitions: usize,
    reducers: usize,
    exec: ExecutionPolicy,
    cancel: Option<CancelToken>,
}

impl std::fmt::Debug for MiningSession {
    /// Compact summary (the database and FST are elided).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MiningSession")
            .field("algorithm", &self.algorithm.name())
            .field("sigma", &self.sigma)
            .field("sequences", &self.db.len())
            .field("has_fst", &self.fst.is_some())
            .field("limits", &self.limits)
            .field("workers", &self.workers)
            .field("partitions", &self.partitions)
            .field("reducers", &self.reducers)
            .finish()
    }
}

impl MiningSession {
    /// Starts a new builder.
    pub fn builder() -> MiningSessionBuilder {
        MiningSessionBuilder::default()
    }

    /// The session's dictionary (e.g. for rendering mined patterns).
    pub fn dictionary(&self) -> &Dictionary {
        &self.dict
    }

    /// The session's input database.
    pub fn database(&self) -> &SequenceDb {
        &self.db
    }

    /// The selected algorithm.
    pub fn algorithm(&self) -> &AlgorithmSpec {
        &self.algorithm
    }

    /// The session's compiled constraint, if it carries one — shareable
    /// across sessions over the same dictionary (the `desq-serve` FST
    /// cache hands one `Arc` to every concurrent query).
    pub fn fst(&self) -> Option<&Arc<Fst>> {
        self.fst.as_ref()
    }

    /// The validated support threshold σ.
    pub fn sigma(&self) -> u64 {
        self.sigma
    }

    /// A cheap variant of this session dispatching to a different
    /// algorithm (re-validated: switching to an FST-based algorithm on a
    /// session without a constraint errors).
    pub fn with_algorithm(&self, algorithm: AlgorithmSpec) -> Result<MiningSession> {
        let session = MiningSession {
            algorithm,
            ..self.clone()
        };
        session.validate()?;
        Ok(session)
    }

    /// A cheap variant of this session with a different threshold.
    pub fn with_sigma(&self, sigma: u64) -> Result<MiningSession> {
        let session = MiningSession {
            sigma,
            ..self.clone()
        };
        session.validate()?;
        Ok(session)
    }

    fn validate(&self) -> Result<()> {
        if self.algorithm.needs_fst() && self.fst.is_none() {
            return Err(Error::Invalid(format!(
                "{} requires a subsequence constraint: call .pattern(), \
                 .pattern_unanchored() or .fst() on the builder",
                self.algorithm.name()
            )));
        }
        self.context().validate()
    }

    /// The [`MiningContext`] this session hands to its [`Miner`].
    pub fn context(&self) -> MiningContext<'_> {
        MiningContext {
            db: &self.db,
            dict: &self.dict,
            fst: self.fst.as_deref(),
            sigma: self.sigma,
            limits: self.limits,
            workers: self.workers,
            partitions: self.partitions,
            reducers: self.reducers,
            exec: self.exec,
            cancel: None,
        }
    }

    /// The cancellation token of one run: the session's adopted token
    /// (with the deadline armed on it, first arm wins) or a fresh
    /// per-run token when only a deadline is configured; `None` when the
    /// run is unbounded and nothing can cancel it.
    fn run_token(&self) -> Option<CancelToken> {
        match (&self.cancel, self.limits.deadline) {
            (Some(token), deadline) => {
                if let Some(d) = deadline {
                    token.arm_deadline(d);
                }
                Some(token.clone())
            }
            (None, Some(d)) => Some(CancelToken::with_deadline(d)),
            (None, None) => None,
        }
    }

    /// Runs the selected algorithm and returns the uniform result.
    ///
    /// `result.patterns` is sorted lexicographically (the documented
    /// invariant of [`MiningResult`]); `result.metrics` is non-trivial for
    /// every algorithm — wall time and work counts always, shuffle volume
    /// and balance for the distributed ones.
    pub fn run(&self) -> Result<MiningResult> {
        let miner = self.algorithm.miner();
        let token = self.run_token();
        let mut ctx = self.context();
        ctx.cancel = token.as_ref();
        let mut result = miner.mine(&ctx).map_err(|e| self.annotate(e))?;
        if let Some(fst) = &self.fst {
            result.metrics.record_fst(fst);
        }
        if result.patterns.len() > self.limits.max_patterns {
            return Err(Error::ResourceExhausted(format!(
                "{} produced {} patterns, exceeding max_patterns = {}; raise the \
                 cap via MiningSessionBuilder::max_patterns or increase σ",
                self.algorithm.name(),
                result.patterns.len(),
                self.limits.max_patterns
            )));
        }
        debug_assert!(result.is_sorted(), "miner violated the sort invariant");
        Ok(result)
    }

    /// Adds the algorithm name and a budget hint to resource errors so the
    /// failure explains itself at the call site.
    fn annotate(&self, e: Error) -> Error {
        match e {
            Error::ResourceExhausted(msg) => Error::ResourceExhausted(format!(
                "{}: {msg} (session budget: {}; raise it via \
                 MiningSessionBuilder::budget)",
                self.algorithm.name(),
                self.limits.budget
            )),
            other => other,
        }
    }

    /// Mines on a background thread and streams patterns as an iterator,
    /// without materializing and sorting the result set eagerly.
    ///
    /// DESQ-DFS yields patterns incrementally while the search tree is
    /// explored (bounded channel — memory stays proportional to the
    /// consumer's lag, not the result size), balancing subtree tasks
    /// across the session's worker threads by work stealing; the other
    /// algorithms compute their result and then stream it out. Streaming
    /// always runs DESQ-DFS's flat-table path — the lean counting path
    /// cannot emit patterns incrementally, so the session's
    /// [`execution_policy`](MiningSessionBuilder::execution_policy) does
    /// not apply here. Patterns
    /// arrive in discovery order (an unspecified interleaving of the
    /// workers' DFS orders when `workers > 1`), *not* necessarily the
    /// sorted order of [`run`](MiningSession::run). Call
    /// [`PatternStream::finish`] to obtain the run's [`MiningMetrics`] and
    /// surface any error.
    ///
    /// Dropping the stream early stops DESQ-DFS mid-search (the producer
    /// notices the closed channel at its next emission); for the other
    /// algorithms the computation has no mid-run cancellation point, so
    /// the drop discards the remaining patterns but blocks until the
    /// already-running computation finishes.
    pub fn stream(&self) -> PatternStream {
        let (tx, rx) = mpsc::sync_channel(1024);
        let session = self.clone();
        let handle = std::thread::spawn(move || session.stream_worker(&tx));
        PatternStream {
            rx: Some(rx),
            handle: Some(handle),
        }
    }

    fn stream_worker(&self, tx: &mpsc::SyncSender<(Sequence, u64)>) -> Result<MiningMetrics> {
        if let AlgorithmSpec::DesqDfs = self.algorithm {
            let ctx = self.context();
            ctx.validate()?;
            let fst = ctx.fst()?;
            let t0 = Instant::now();
            let inputs: Vec<desq_miner::WeightedInput<'_>> = self
                .db
                .sequences
                .iter()
                .map(|s| (s.as_slice(), 1))
                .collect();
            let miner = LocalMiner::new(fst, &self.dict, MinerConfig::sequential(self.sigma));
            let token = self.run_token();
            let mut sent = 0usize;
            let mut overflow = false;
            miner
                .mine_each_with_workers(
                    &inputs,
                    self.workers,
                    token.as_ref(),
                    &mut |pattern, freq| {
                        if sent >= self.limits.max_patterns {
                            overflow = true;
                            return false;
                        }
                        // A send error means the stream was dropped: stop mining.
                        if tx.send((pattern, freq)).is_err() {
                            return false;
                        }
                        sent += 1;
                        true
                    },
                )
                .map_err(|e| self.annotate(e))?;
            if overflow {
                return Err(Error::ResourceExhausted(format!(
                    "DESQ-DFS exceeded max_patterns = {}; raise the cap via \
                     MiningSessionBuilder::max_patterns or increase σ",
                    self.limits.max_patterns
                )));
            }
            let n = sent as u64;
            let mut metrics = MiningMetrics::sequential(
                t0.elapsed().as_nanos() as u64,
                self.db.len() as u64,
                n,
                n,
            );
            metrics.record_fst(fst);
            Ok(metrics)
        } else {
            let result = self.run()?;
            let metrics = result.metrics.clone();
            for pattern in result.patterns {
                if tx.send(pattern).is_err() {
                    break; // stream dropped: discard the rest
                }
            }
            Ok(metrics)
        }
    }
}

/// A lazily-consumed stream of `(pattern, frequency)` pairs produced by
/// [`MiningSession::stream`].
///
/// Iteration yields patterns in discovery order. After the iterator is
/// exhausted (or at any earlier point), [`finish`](PatternStream::finish)
/// joins the mining thread and returns its [`MiningMetrics`] — or the
/// error that terminated it (budget exhaustion, `max_patterns` overflow,
/// validation failure). Dropping the stream without `finish` discards the
/// remaining patterns and reaps the mining thread: DESQ-DFS stops
/// mid-search; other algorithms run their (uncancellable) computation to
/// completion first — see [`MiningSession::stream`].
pub struct PatternStream {
    rx: Option<mpsc::Receiver<(Sequence, u64)>>,
    handle: Option<JoinHandle<Result<MiningMetrics>>>,
}

impl Iterator for PatternStream {
    type Item = (Sequence, u64);

    fn next(&mut self) -> Option<(Sequence, u64)> {
        self.rx.as_ref()?.recv().ok()
    }
}

impl PatternStream {
    /// Drains any remaining patterns, joins the mining thread, and returns
    /// the run's metrics (or its error).
    pub fn finish(mut self) -> Result<MiningMetrics> {
        if let Some(rx) = self.rx.take() {
            // Drain so a blocked producer can complete.
            while rx.recv().is_ok() {}
        }
        let handle = self.handle.take().expect("finish called once");
        handle
            .join()
            .unwrap_or_else(|p| Err(Error::WorkerPanicked(panic_message(p.as_ref()))))
    }
}

impl Drop for PatternStream {
    fn drop(&mut self) {
        // Dropping the receiver makes the producer's next send fail, which
        // stops its emission loop; then reap the thread (this blocks until
        // the producer reaches a send — immediate for DESQ-DFS, after the
        // computation for the run-then-drain algorithms).
        self.rx.take();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desq_core::toy;

    fn toy_session(algorithm: AlgorithmSpec) -> MiningSession {
        let fx = toy::fixture();
        MiningSession::builder()
            .dictionary(fx.dict)
            .database(fx.db)
            .pattern(toy::PATTERN)
            .sigma(2)
            .algorithm(algorithm)
            .workers(2)
            .partitions(3)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_requires_each_input() {
        let fx = toy::fixture();
        let missing_dict = MiningSession::builder()
            .database(fx.db.clone())
            .sigma(2)
            .build();
        assert!(matches!(missing_dict, Err(Error::Invalid(ref m)) if m.contains("dictionary")));
        let missing_db = MiningSession::builder()
            .dictionary(fx.dict.clone())
            .sigma(2)
            .build();
        assert!(matches!(missing_db, Err(Error::Invalid(ref m)) if m.contains("database")));
        let missing_sigma = MiningSession::builder()
            .dictionary(fx.dict.clone())
            .database(fx.db.clone())
            .pattern(toy::PATTERN)
            .build();
        assert!(matches!(missing_sigma, Err(Error::Invalid(ref m)) if m.contains("threshold")));
        let missing_fst = MiningSession::builder()
            .dictionary(fx.dict.clone())
            .database(fx.db.clone())
            .sigma(2)
            .algorithm(AlgorithmSpec::d_seq())
            .build();
        assert!(matches!(missing_fst, Err(Error::Invalid(ref m)) if m.contains("constraint")));
        let bad_pattern = MiningSession::builder()
            .dictionary(fx.dict.clone())
            .database(fx.db.clone())
            .pattern("([")
            .sigma(2)
            .build();
        assert!(matches!(bad_pattern, Err(Error::Parse { .. })));
        let zero_workers = MiningSession::builder()
            .dictionary(fx.dict)
            .database(fx.db)
            .pattern(toy::PATTERN)
            .sigma(2)
            .workers(0)
            .build();
        assert!(matches!(zero_workers, Err(Error::Invalid(ref m)) if m.contains("worker")));
    }

    #[test]
    fn compile_only_validates_without_a_database() {
        let fx = toy::fixture();
        // No database, no σ, no algorithm — the dry-run needs neither.
        let fst = MiningSession::builder()
            .dictionary(fx.dict.clone())
            .pattern(toy::PATTERN)
            .compile_only()
            .unwrap();
        // The compiled FST is reusable: a session built on it matches the
        // paper result without recompiling.
        let session = MiningSession::builder()
            .dictionary(fx.dict.clone())
            .database(fx.db.clone())
            .fst(fst.clone())
            .sigma(2)
            .build()
            .unwrap();
        assert_eq!(session.run().unwrap().patterns.len(), 3);
        assert!(Arc::ptr_eq(session.fst().unwrap(), &fst));

        let bad = MiningSession::builder()
            .dictionary(fx.dict.clone())
            .pattern("([")
            .compile_only();
        assert!(matches!(bad, Err(Error::Parse { .. })));
        let unknown = MiningSession::builder()
            .dictionary(fx.dict.clone())
            .pattern("(nosuchitem)")
            .compile_only();
        assert!(matches!(unknown, Err(Error::UnknownItem(_))));
        let no_dict = MiningSession::builder()
            .pattern(toy::PATTERN)
            .compile_only();
        assert!(matches!(no_dict, Err(Error::Invalid(ref m)) if m.contains("dictionary")));
        let no_pattern = MiningSession::builder().dictionary(fx.dict).compile_only();
        assert!(matches!(no_pattern, Err(Error::Invalid(ref m)) if m.contains("pattern")));
    }

    #[test]
    fn run_matches_paper_result_and_reports_metrics() {
        let session = toy_session(AlgorithmSpec::DesqDfs);
        let res = session.run().unwrap();
        assert_eq!(res.patterns.len(), 3);
        assert!(res.is_sorted());
        assert_eq!(res.metrics.input_sequences, 5);
        assert_eq!(res.metrics.output_records, 3);
        assert!(res.metrics.wall_nanos > 0);
        // Distributed variant over the same session: same patterns, plus
        // shuffle accounting.
        let dist = session.with_algorithm(AlgorithmSpec::d_cand()).unwrap();
        let dres = dist.run().unwrap();
        assert_eq!(dres.patterns, res.patterns);
        assert!(dres.metrics.shuffle_bytes > 0);
        assert_eq!(dres.metrics.workers, 2);
    }

    #[test]
    fn max_patterns_overflow_is_a_descriptive_error() {
        let session = toy_session(AlgorithmSpec::DesqDfs);
        let capped = MiningSession {
            limits: Limits::default().with_max_patterns(2),
            ..session
        };
        let err = capped.run().unwrap_err();
        assert!(
            matches!(err, Error::ResourceExhausted(ref m) if m.contains("max_patterns")),
            "{err}"
        );
        // Streaming enforces the same cap.
        let err = capped.stream().finish().unwrap_err();
        assert!(matches!(err, Error::ResourceExhausted(ref m) if m.contains("max_patterns")));
    }

    #[test]
    fn budget_errors_name_the_algorithm_and_the_knob() {
        let fx = toy::fixture();
        let session = MiningSession::builder()
            .dictionary(fx.dict)
            .database(fx.db)
            .pattern(toy::PATTERN)
            .sigma(2)
            .algorithm(AlgorithmSpec::DesqCount)
            .budget(2)
            .build()
            .unwrap();
        let err = session.run().unwrap_err();
        match err {
            Error::ResourceExhausted(msg) => {
                assert!(msg.contains("DESQ-COUNT"), "{msg}");
                assert!(msg.contains("MiningSessionBuilder::budget"), "{msg}");
            }
            other => panic!("expected ResourceExhausted, got {other}"),
        }
    }

    #[test]
    fn stream_yields_the_eager_result_set() {
        for spec in [
            AlgorithmSpec::DesqDfs,
            AlgorithmSpec::d_seq(),
            AlgorithmSpec::PrefixSpan { max_len: 3 },
        ] {
            let session = toy_session(spec);
            let eager = session.run().unwrap();
            let mut stream = session.stream();
            let mut streamed: Vec<(Sequence, u64)> = stream.by_ref().collect();
            let metrics = stream.finish().unwrap();
            streamed.sort_unstable();
            assert_eq!(streamed, eager.patterns, "{}", session.algorithm().name());
            assert_eq!(metrics.output_records, eager.patterns.len() as u64);
        }
    }

    #[test]
    fn dropping_a_stream_early_cancels_cleanly() {
        let session = toy_session(AlgorithmSpec::DesqDfs);
        let mut stream = session.with_sigma(1).unwrap().stream();
        let first = stream.next();
        assert!(first.is_some());
        drop(stream); // must not hang or leak the mining thread
    }

    #[test]
    fn with_sigma_revalidates() {
        let session = toy_session(AlgorithmSpec::DesqDfs);
        assert!(matches!(session.with_sigma(0), Err(Error::Invalid(_))));
    }

    #[test]
    fn an_expired_deadline_fails_the_run_with_deadline_exceeded() {
        for algorithm in [AlgorithmSpec::DesqCount, AlgorithmSpec::DesqDfs] {
            let fx = toy::fixture();
            let session = MiningSession::builder()
                .dictionary(fx.dict)
                .database(fx.db)
                .pattern(toy::PATTERN)
                .sigma(2)
                .algorithm(algorithm)
                .workers(2)
                .deadline(std::time::Duration::from_nanos(1))
                .build()
                .unwrap();
            let err = session.run().unwrap_err();
            assert!(
                matches!(err, Error::DeadlineExceeded(_)),
                "{}: expected DeadlineExceeded, got {err}",
                session.algorithm().name()
            );
        }
    }

    #[test]
    fn a_pre_cancelled_token_fails_the_run_with_cancelled() {
        let token = CancelToken::new();
        token.cancel();
        let fx = toy::fixture();
        let session = MiningSession::builder()
            .dictionary(fx.dict)
            .database(fx.db)
            .pattern(toy::PATTERN)
            .sigma(2)
            .workers(2)
            .cancel_token(token)
            .build()
            .unwrap();
        assert!(matches!(session.run().unwrap_err(), Error::Cancelled(_)));
    }

    #[test]
    fn cancelling_mid_stream_surfaces_in_finish() {
        let token = CancelToken::new();
        let fx = toy::fixture();
        let session = MiningSession::builder()
            .dictionary(fx.dict)
            .database(fx.db)
            .pattern(toy::PATTERN)
            .sigma(2)
            .workers(2)
            .cancel_token(token.clone())
            .build()
            .unwrap();
        token.cancel();
        let mut stream = session.stream();
        let drained: Vec<_> = stream.by_ref().collect();
        // The token tripped before mining began, so nothing may have been
        // emitted and `finish` must report the typed cancellation.
        assert!(drained.is_empty(), "cancelled run emitted {drained:?}");
        assert!(matches!(stream.finish().unwrap_err(), Error::Cancelled(_)));
    }

    #[test]
    fn an_unexercised_deadline_changes_nothing() {
        let fx = toy::fixture();
        let session = MiningSession::builder()
            .dictionary(fx.dict)
            .database(fx.db)
            .pattern(toy::PATTERN)
            .sigma(2)
            .workers(2)
            .deadline(std::time::Duration::from_secs(3600))
            .build()
            .unwrap();
        let out = session.run().unwrap();
        assert_eq!(out.patterns.len(), 3);
        assert!(!out.metrics.cancelled);
    }
}
